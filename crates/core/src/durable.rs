//! Crash-safe persistence for the evidence cache and the daily advance.
//!
//! The nightly moving-landscape job (§1.2's "around the clock" miners)
//! runs on shared infrastructure where it gets preempted, OOM-killed,
//! or dies mid-write. A single-file serde dump fails that world twice
//! over: a torn write corrupts the whole cache, and a kill between two
//! window advances loses a week of warm evidence. This module replaces
//! the dump with a small durable store:
//!
//! * **Checkpoint** — `<path>` holds a checksummed, version-stamped
//!   snapshot: one header line plus one segment per UTC day of cached
//!   evidence. Every segment carries an FNV checksum over its day and
//!   payload; the header carries its own checksum and the segment
//!   count, so truncation at any byte — even an exact segment boundary
//!   — is detected. Checkpoints are only ever replaced via
//!   write-to-temp + atomic rename, so the visible file is always a
//!   complete past snapshot.
//! * **Journal** — `<path>.journal` is an append-only log of per-step
//!   cache deltas written *between* checkpoints. A crash mid-run
//!   leaves the old checkpoint plus a (possibly torn) journal;
//!   recovery replays the intact prefix and re-runs only the step that
//!   was in flight.
//! * **Quarantine + ledger** — corrupt byte regions are appended to
//!   `<path>.quarantine` (framed, for post-mortems) and every recovery
//!   decision is appended to `<path>.ledger` as a JSON-lines
//!   [`RecoveryEvent`] stream. Neither file participates in
//!   byte-identity: equal cache state ⇒ equal checkpoint bytes.
//!
//! Because the checkpoint is a pure function of `(cache, completed,
//! plan signature)` and cache entries are content-addressed, a run
//! killed at *any* durable write and resumed converges to the exact
//! bytes of an uninterrupted run — the property the `crash_recovery`
//! harness sweeps exhaustively with [`WritePolicy`] injection points
//! and `logdep-faults`' crash primitives.

use crate::cache::{
    l1_fingerprint, l2_fingerprint, l3_fingerprint, EvidenceCache, EvidenceKey, Fnv, L3DayCounts,
};
use crate::error::MineError;
use crate::health::{record_detector_health, DetectorHealth, DetectorKind, PipelineConfig};
use crate::l2::BigramCounts;
use crate::window::{run_window_cached, WindowOutcome};
use logdep_logstore::time::{TimeRange, MS_PER_DAY};
use logdep_logstore::{LogStore, Millis};
use logdep_obs::{record, Field};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::io::Write as _;
use std::path::{Path, PathBuf};

/// The durable writes the store performs, in the order a run meets
/// them. Crash harnesses key their "abort at the Kth write" sweeps on
/// these, and [`WritePolicy::before_write`] receives the one about to
/// happen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableOp {
    /// Writing the checkpoint bytes to the temp file.
    CheckpointWrite,
    /// Atomically renaming the checkpoint temp file into place.
    CheckpointRename,
    /// Appending one step record to the journal.
    JournalAppend,
    /// Rewriting the journal (repair or post-checkpoint reset) to temp.
    JournalWrite,
    /// Atomically renaming the journal temp file into place.
    JournalRename,
    /// Appending a corrupt byte region to the quarantine file.
    QuarantineAppend,
    /// Appending recovery events to the ledger.
    LedgerAppend,
    /// A caller-owned file written through [`persist_atomic`] (temp write).
    FileWrite,
    /// A caller-owned file written through [`persist_atomic`] (rename).
    FileRename,
}

impl DurableOp {
    /// Stable kebab-case name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DurableOp::CheckpointWrite => "checkpoint-write",
            DurableOp::CheckpointRename => "checkpoint-rename",
            DurableOp::JournalAppend => "journal-append",
            DurableOp::JournalWrite => "journal-write",
            DurableOp::JournalRename => "journal-rename",
            DurableOp::QuarantineAppend => "quarantine-append",
            DurableOp::LedgerAppend => "ledger-append",
            DurableOp::FileWrite => "file-write",
            DurableOp::FileRename => "file-rename",
        }
    }
}

impl std::fmt::Display for DurableOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a [`WritePolicy`] decides for one durable write.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WriteDecision {
    /// Perform the write normally.
    Proceed,
    /// Simulate a crash at this write. For plain writes/appends,
    /// `partial` (when present) is flushed to the destination first —
    /// the torn or bit-flipped wreck the next open must survive. For
    /// rename ops `partial` is ignored: renames are atomic, so a crash
    /// simply leaves the old file.
    Abort {
        /// Bytes that "made it to the platter" before the crash.
        partial: Option<Vec<u8>>,
    },
}

/// Interception point for every durable write the store performs.
/// Production uses [`NoopPolicy`]; crash harnesses count ops and abort
/// at a scheduled one.
pub trait WritePolicy {
    /// Called immediately before each durable write with the exact
    /// bytes about to be persisted.
    fn before_write(&mut self, op: DurableOp, bytes: &[u8]) -> WriteDecision;
}

/// The production policy: every write proceeds.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopPolicy;

impl WritePolicy for NoopPolicy {
    fn before_write(&mut self, _op: DurableOp, _bytes: &[u8]) -> WriteDecision {
        WriteDecision::Proceed
    }
}

/// Errors of the durable layer.
#[derive(Debug)]
pub enum DurableError {
    /// A [`WritePolicy`] aborted the run at a durable write (simulated
    /// crash).
    Crashed {
        /// The write that was interrupted.
        op: DurableOp,
    },
    /// A real I/O failure (not a detected corruption — those degrade).
    Io {
        /// Path the operation touched.
        path: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// Serialization of state that must be persistable failed.
    Codec(String),
    /// The pipeline itself failed under the durable driver.
    Pipeline(MineError),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Crashed { op } => {
                write!(f, "simulated crash at durable write ({op})")
            }
            DurableError::Io { path, source } => write!(f, "i/o error on {path}: {source}"),
            DurableError::Codec(msg) => write!(f, "codec error: {msg}"),
            DurableError::Pipeline(e) => write!(f, "pipeline error: {e}"),
        }
    }
}

impl std::error::Error for DurableError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DurableError::Io { source, .. } => Some(source),
            DurableError::Pipeline(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MineError> for DurableError {
    fn from(e: MineError) -> Self {
        DurableError::Pipeline(e)
    }
}

/// One recovery decision, as recorded in memory, in
/// [`DetectorHealth`], and in the on-disk ledger (JSON lines).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryEvent {
    /// Stable machine-readable code (e.g. `segment-corrupt`).
    pub code: String,
    /// Whether this event means on-disk corruption was detected (as
    /// opposed to a benign cold start or plan change).
    pub corruption: bool,
    /// Human-readable detail.
    pub detail: String,
}

fn io_err(path: &Path, source: std::io::Error) -> DurableError {
    DurableError::Io {
        path: path.display().to_string(),
        source,
    }
}

fn codec_err(context: &str, e: impl std::fmt::Display) -> DurableError {
    DurableError::Codec(format!("{context}: {e}"))
}

/// `path` with `suffix` appended to its final component.
fn sibling(path: &Path, suffix: &str) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(suffix);
    PathBuf::from(s)
}

/// Writes `bytes` to `path` (whole-file), consulting `policy` first.
fn guarded_write(
    path: &Path,
    bytes: &[u8],
    op: DurableOp,
    policy: &mut dyn WritePolicy,
) -> Result<(), DurableError> {
    match policy.before_write(op, bytes) {
        WriteDecision::Proceed => std::fs::write(path, bytes).map_err(|e| io_err(path, e)),
        WriteDecision::Abort { partial } => {
            if let Some(p) = partial {
                // The crash left a wreck behind; best-effort, the
                // "crash" wins either way.
                match std::fs::write(path, &p) {
                    Ok(()) | Err(_) => {}
                }
            }
            Err(DurableError::Crashed { op })
        }
    }
}

/// Appends `bytes` to `path` (creating it), consulting `policy` first.
fn guarded_append(
    path: &Path,
    bytes: &[u8],
    op: DurableOp,
    policy: &mut dyn WritePolicy,
) -> Result<(), DurableError> {
    match policy.before_write(op, bytes) {
        WriteDecision::Proceed => {
            let mut fh = std::fs::OpenOptions::new()
                .append(true)
                .create(true)
                .open(path)
                .map_err(|e| io_err(path, e))?;
            fh.write_all(bytes).map_err(|e| io_err(path, e))
        }
        WriteDecision::Abort { partial } => {
            if let Some(p) = partial {
                if let Ok(mut fh) = std::fs::OpenOptions::new()
                    .append(true)
                    .create(true)
                    .open(path)
                {
                    match fh.write_all(&p) {
                        Ok(()) | Err(_) => {}
                    }
                }
            }
            Err(DurableError::Crashed { op })
        }
    }
}

/// Write-to-temp + atomic rename, with both steps as policy-visible
/// durable ops. The visible `path` is always either the old complete
/// file or the new complete file, never a mixture.
fn write_atomic(
    path: &Path,
    bytes: &[u8],
    write_op: DurableOp,
    rename_op: DurableOp,
    policy: &mut dyn WritePolicy,
) -> Result<(), DurableError> {
    let tmp = sibling(path, ".tmp");
    guarded_write(&tmp, bytes, write_op, policy)?;
    match policy.before_write(rename_op, bytes) {
        WriteDecision::Proceed => std::fs::rename(&tmp, path).map_err(|e| io_err(path, e)),
        WriteDecision::Abort { .. } => Err(DurableError::Crashed { op: rename_op }),
    }
}

/// Atomically persists caller-owned bytes (temp write + rename). The
/// workspace `non-atomic-persist` lint points direct writers of
/// persistent state here.
pub fn persist_atomic(path: &Path, bytes: &[u8]) -> Result<(), DurableError> {
    write_atomic(
        path,
        bytes,
        DurableOp::FileWrite,
        DurableOp::FileRename,
        &mut NoopPolicy,
    )
}

/// One day's worth of cache entries — the unit of checkpoint
/// checksumming and of journal deltas. Vectors stay in `BTreeMap`
/// iteration order, so encoding is deterministic.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SegmentPayload {
    /// L1 slot-evidence entries.
    pub l1: Vec<(EvidenceKey, Vec<(u32, u32, bool)>)>,
    /// L2 session-day bigram entries.
    pub l2: Vec<(EvidenceKey, BigramCounts)>,
    /// L3 day-scan entries.
    pub l3: Vec<(EvidenceKey, L3DayCounts)>,
}

impl SegmentPayload {
    /// Total entries across layers.
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len() + self.l3.len()
    }

    /// Whether the delta carries no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One journal record: the cache delta of a completed step plus the
/// window it settled, so replay can re-apply the step's eviction.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JournalPayload {
    /// Window start (ms) of the completed step.
    pub window_start: i64,
    /// Window end (ms, exclusive) of the completed step.
    pub window_end: i64,
    /// Entries the step inserted.
    pub delta: SegmentPayload,
}

const MAGIC: &str = "LOGDEP-DUR v1";

fn day_of(key: &EvidenceKey) -> i64 {
    key.start.div_euclid(MS_PER_DAY)
}

fn header_fnv(cache_version: u32, n_segments: u64, completed: u64, plan_fp: u64) -> u64 {
    let mut f = Fnv::new();
    f.push_str(MAGIC);
    f.push_u64(u64::from(cache_version));
    f.push_u64(n_segments);
    f.push_u64(completed);
    f.push_u64(plan_fp);
    f.finish()
}

fn segment_fnv(day: i64, payload: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.push_str("seg");
    f.push_i64(day);
    f.push_u64(payload.len() as u64);
    f.push_bytes(payload);
    f.finish()
}

fn journal_fnv(step: u64, plan_fp: u64, payload: &[u8]) -> u64 {
    let mut f = Fnv::new();
    f.push_str("jrn");
    f.push_u64(step);
    f.push_u64(plan_fp);
    f.push_u64(payload.len() as u64);
    f.push_bytes(payload);
    f.finish()
}

/// Encodes a checkpoint: header line + one checksummed segment per day.
/// A pure function of its arguments — equal state ⇒ equal bytes, the
/// anchor of the crash sweep's byte-identity assertion.
fn encode_checkpoint(
    cache: &EvidenceCache,
    completed: u64,
    plan_fp: u64,
) -> Result<Vec<u8>, DurableError> {
    let mut days: BTreeMap<i64, SegmentPayload> = BTreeMap::new();
    for (k, v) in &cache.l1 {
        days.entry(day_of(k)).or_default().l1.push((*k, v.clone()));
    }
    for (k, v) in &cache.l2 {
        days.entry(day_of(k)).or_default().l2.push((*k, v.clone()));
    }
    for (k, v) in &cache.l3 {
        days.entry(day_of(k)).or_default().l3.push((*k, v.clone()));
    }
    let n = days.len() as u64;
    let hfnv = header_fnv(EvidenceCache::VERSION, n, completed, plan_fp);
    let mut out = format!(
        "{MAGIC} {} {n} {completed} {plan_fp} {hfnv}\n",
        EvidenceCache::VERSION
    )
    .into_bytes();
    for (day, payload) in &days {
        let json = serde_json::to_string(payload).map_err(|e| codec_err("segment", e))?;
        let fnv = segment_fnv(*day, json.as_bytes());
        out.extend_from_slice(format!("SEG {day} {} {fnv}\n", json.len()).as_bytes());
        out.extend_from_slice(json.as_bytes());
        out.push(b'\n');
    }
    Ok(out)
}

fn find_byte(bytes: &[u8], from: usize, needle: u8) -> Option<usize> {
    bytes
        .get(from..)
        .and_then(|tail| tail.iter().position(|&b| b == needle))
        .map(|i| from + i)
}

/// First offset `>= from` where the resync marker `\nSEG ` begins.
fn find_resync(bytes: &[u8], from: usize) -> Option<usize> {
    let marker = b"\nSEG ";
    let mut at = from;
    while let Some(i) = find_byte(bytes, at, b'\n') {
        if bytes.get(i..i + marker.len()) == Some(&marker[..]) {
            return Some(i);
        }
        at = i + 1;
    }
    None
}

/// Everything a checkpoint decode learned, including the wrecks.
struct DecodedCheckpoint {
    cache: EvidenceCache,
    completed: u64,
    plan_fp: u64,
    /// Header parsed and checksummed clean.
    header_ok: bool,
    /// Snapshot format version matches [`EvidenceCache::VERSION`].
    version_ok: bool,
    /// No corruption anywhere — the file re-encodes to itself.
    intact: bool,
    events: Vec<RecoveryEvent>,
    quarantined: Vec<Vec<u8>>,
    restored: usize,
}

fn event(code: &str, corruption: bool, detail: String) -> RecoveryEvent {
    RecoveryEvent {
        code: code.to_string(),
        corruption,
        detail,
    }
}

/// Decodes checkpoint bytes, verifying every checksum. Corrupt regions
/// are collected for quarantine and reported as events; intact
/// segments are restored. Never fails: worst case is an empty cache
/// plus corruption events — degraded, not dead.
fn decode_checkpoint(bytes: &[u8]) -> DecodedCheckpoint {
    let mut d = DecodedCheckpoint {
        cache: EvidenceCache::new(),
        completed: 0,
        plan_fp: 0,
        header_ok: false,
        version_ok: false,
        intact: true,
        events: Vec::new(),
        quarantined: Vec::new(),
        restored: 0,
    };
    let header = match decode_header(bytes) {
        Ok(h) => h,
        Err(reason) => {
            d.intact = false;
            d.events.push(event(
                "checkpoint-header-corrupt",
                true,
                format!("{reason}; discarding checkpoint"),
            ));
            d.quarantined.push(bytes.to_vec());
            return d;
        }
    };
    d.header_ok = true;
    d.completed = header.completed;
    d.plan_fp = header.plan_fp;
    if header.cache_version != EvidenceCache::VERSION {
        d.events.push(event(
            "version-mismatch",
            false,
            format!(
                "snapshot format v{} != current v{}; starting cold",
                header.cache_version,
                EvidenceCache::VERSION
            ),
        ));
        return d;
    }
    d.version_ok = true;

    let mut pos = header.body_start;
    let mut decoded = 0u64;
    while pos < bytes.len() {
        let seg_start = pos;
        match decode_segment(bytes, pos) {
            Ok((_day, payload, next)) => {
                for (k, v) in payload.l1 {
                    d.cache.l1.insert(k, v);
                    d.restored += 1;
                }
                for (k, v) in payload.l2 {
                    d.cache.l2.insert(k, v);
                    d.restored += 1;
                }
                for (k, v) in payload.l3 {
                    d.cache.l3.insert(k, v);
                    d.restored += 1;
                }
                decoded += 1;
                pos = next;
            }
            Err(reason) => {
                d.intact = false;
                let (skip_to, region) = match find_resync(bytes, seg_start + 1) {
                    Some(i) => (i + 1, bytes.get(seg_start..i + 1)),
                    None => (bytes.len(), bytes.get(seg_start..)),
                };
                d.events.push(event(
                    "segment-corrupt",
                    true,
                    format!(
                        "{reason}; quarantined {} bytes at offset {seg_start}",
                        region.map(<[u8]>::len).unwrap_or(0)
                    ),
                ));
                if let Some(r) = region {
                    d.quarantined.push(r.to_vec());
                }
                pos = skip_to;
            }
        }
    }
    if decoded != header.n_segments {
        d.intact = false;
        d.events.push(event(
            "checkpoint-truncated",
            true,
            format!(
                "header promises {} segments, {decoded} decoded cleanly",
                header.n_segments
            ),
        ));
    }
    d
}

struct Header {
    cache_version: u32,
    n_segments: u64,
    completed: u64,
    plan_fp: u64,
    body_start: usize,
}

fn decode_header(bytes: &[u8]) -> Result<Header, String> {
    let nl = find_byte(bytes, 0, b'\n').ok_or_else(|| "no header line".to_string())?;
    let line = bytes
        .get(..nl)
        .and_then(|b| std::str::from_utf8(b).ok())
        .ok_or_else(|| "header not utf-8".to_string())?;
    let mut it = line.split_ascii_whitespace();
    let magic_a = it.next().unwrap_or_default();
    let magic_b = it.next().unwrap_or_default();
    if format!("{magic_a} {magic_b}") != MAGIC {
        return Err(format!("bad magic {magic_a:?} {magic_b:?}"));
    }
    let mut next_u64 = |name: &str| -> Result<u64, String> {
        it.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| format!("bad header field {name}"))
    };
    let cache_version = next_u64("version")?;
    let n_segments = next_u64("n_segments")?;
    let completed = next_u64("completed")?;
    let plan_fp = next_u64("plan_fp")?;
    let hfnv = next_u64("hfnv")?;
    if it.next().is_some() {
        return Err("trailing header tokens".to_string());
    }
    let cache_version = u32::try_from(cache_version).map_err(|_| "version overflow".to_string())?;
    if header_fnv(cache_version, n_segments, completed, plan_fp) != hfnv {
        return Err("header checksum mismatch".to_string());
    }
    Ok(Header {
        cache_version,
        n_segments,
        completed,
        plan_fp,
        body_start: nl + 1,
    })
}

fn decode_segment(bytes: &[u8], pos: usize) -> Result<(i64, SegmentPayload, usize), String> {
    let nl =
        find_byte(bytes, pos, b'\n').ok_or_else(|| "unterminated segment header".to_string())?;
    let line = bytes
        .get(pos..nl)
        .and_then(|b| std::str::from_utf8(b).ok())
        .ok_or_else(|| "segment header not utf-8".to_string())?;
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("SEG") {
        return Err("missing SEG tag".to_string());
    }
    let day: i64 = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| "bad segment day".to_string())?;
    let len: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| "bad segment length".to_string())?;
    let fnv: u64 = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| "bad segment checksum".to_string())?;
    if it.next().is_some() {
        return Err("trailing segment header tokens".to_string());
    }
    let pay_start = nl + 1;
    let pay_end = pay_start
        .checked_add(len)
        .ok_or_else(|| "segment length overflow".to_string())?;
    let payload = bytes
        .get(pay_start..pay_end)
        .ok_or_else(|| "segment payload truncated".to_string())?;
    if bytes.get(pay_end) != Some(&b'\n') {
        return Err("missing segment terminator".to_string());
    }
    if segment_fnv(day, payload) != fnv {
        return Err("segment checksum mismatch".to_string());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "segment payload not utf-8".to_string())?;
    let parsed: SegmentPayload =
        serde_json::from_str(text).map_err(|e| format!("segment payload unparsable: {e}"))?;
    Ok((day, parsed, pay_end + 1))
}

fn encode_journal_record(
    step: u64,
    plan_fp: u64,
    payload: &JournalPayload,
) -> Result<Vec<u8>, DurableError> {
    let json = serde_json::to_string(payload).map_err(|e| codec_err("journal record", e))?;
    let fnv = journal_fnv(step, plan_fp, json.as_bytes());
    let mut out = format!("J {step} {plan_fp} {} {fnv}\n", json.len()).into_bytes();
    out.extend_from_slice(json.as_bytes());
    out.push(b'\n');
    Ok(out)
}

struct DecodedJournal {
    records: Vec<(u64, u64, JournalPayload)>,
    /// Byte length of the longest cleanly-decoding record prefix.
    clean_len: usize,
    /// Whether bytes beyond the clean prefix exist (a torn tail).
    torn: bool,
}

/// Decodes the journal's clean record prefix. Append-only files tear
/// at the tail, so everything before the first damaged record is
/// trustworthy and everything from it on is not.
fn decode_journal(bytes: &[u8]) -> DecodedJournal {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode_journal_record(bytes, pos) {
            Ok((step, fp, payload, next)) => {
                records.push((step, fp, payload));
                pos = next;
            }
            Err(_) => {
                return DecodedJournal {
                    records,
                    clean_len: pos,
                    torn: true,
                }
            }
        }
    }
    DecodedJournal {
        records,
        clean_len: pos,
        torn: false,
    }
}

fn decode_journal_record(
    bytes: &[u8],
    pos: usize,
) -> Result<(u64, u64, JournalPayload, usize), String> {
    let nl =
        find_byte(bytes, pos, b'\n').ok_or_else(|| "unterminated record header".to_string())?;
    let line = bytes
        .get(pos..nl)
        .and_then(|b| std::str::from_utf8(b).ok())
        .ok_or_else(|| "record header not utf-8".to_string())?;
    let mut it = line.split_ascii_whitespace();
    if it.next() != Some("J") {
        return Err("missing J tag".to_string());
    }
    let mut next_u64 = |name: &str| -> Result<u64, String> {
        it.next()
            .and_then(|t| t.parse::<u64>().ok())
            .ok_or_else(|| format!("bad record field {name}"))
    };
    let step = next_u64("step")?;
    let plan_fp = next_u64("plan_fp")?;
    let len = next_u64("len")?;
    let fnv = next_u64("fnv")?;
    if it.next().is_some() {
        return Err("trailing record header tokens".to_string());
    }
    let len = usize::try_from(len).map_err(|_| "record length overflow".to_string())?;
    let pay_start = nl + 1;
    let pay_end = pay_start
        .checked_add(len)
        .ok_or_else(|| "record length overflow".to_string())?;
    let payload = bytes
        .get(pay_start..pay_end)
        .ok_or_else(|| "record payload truncated".to_string())?;
    if bytes.get(pay_end) != Some(&b'\n') {
        return Err("missing record terminator".to_string());
    }
    if journal_fnv(step, plan_fp, payload) != fnv {
        return Err("record checksum mismatch".to_string());
    }
    let text = std::str::from_utf8(payload).map_err(|_| "record payload not utf-8".to_string())?;
    let parsed: JournalPayload =
        serde_json::from_str(text).map_err(|e| format!("record payload unparsable: {e}"))?;
    if parsed.window_end < parsed.window_start {
        return Err("inverted record window".to_string());
    }
    Ok((step, plan_fp, parsed, pay_end + 1))
}

/// The crash-safe on-disk store: checkpoint + journal + quarantine +
/// ledger, all derived from one base path. Opening never fails on
/// corruption — damage is quarantined, reported as [`RecoveryEvent`]s,
/// and the affected day-ranges simply rebuild as cache misses.
pub struct DurableStore {
    path: PathBuf,
    cache: EvidenceCache,
    completed: u64,
    plan_fp: u64,
    completed_at_load: u64,
    journal_records_at_load: usize,
    checkpoint_valid_at_load: bool,
    events: Vec<RecoveryEvent>,
    ledgered: usize,
    restored_entries: usize,
}

impl DurableStore {
    /// Opens (or cold-starts) the store at `path` for a run whose plan
    /// signature is `plan_fp`: decodes and verifies the checkpoint,
    /// quarantines corrupt regions, repairs a torn journal, and
    /// replays intact journal records on top of the checkpoint.
    pub fn open(
        path: &Path,
        plan_fp: u64,
        policy: &mut dyn WritePolicy,
    ) -> Result<Self, DurableError> {
        let mut store = Self {
            path: path.to_path_buf(),
            cache: EvidenceCache::new(),
            completed: 0,
            plan_fp,
            completed_at_load: 0,
            journal_records_at_load: 0,
            checkpoint_valid_at_load: false,
            events: Vec::new(),
            ledgered: 0,
            restored_entries: 0,
        };
        match std::fs::read(path) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                store.events.push(event(
                    "cold-start",
                    false,
                    format!("no checkpoint at {}; starting cold", path.display()),
                ));
            }
            Err(e) => return Err(io_err(path, e)),
            Ok(bytes) => {
                let d = decode_checkpoint(&bytes);
                for region in &d.quarantined {
                    store.quarantine(region, policy)?;
                }
                store.events.extend(d.events);
                if d.header_ok && d.version_ok {
                    store.cache = d.cache;
                    store.completed = d.completed;
                    store.restored_entries = d.restored;
                    store.checkpoint_valid_at_load = d.intact;
                    if d.plan_fp != plan_fp {
                        store.events.push(event(
                            "plan-changed",
                            false,
                            format!(
                                "plan signature {} != stored {}; keeping warm cache, restarting progress",
                                plan_fp, d.plan_fp
                            ),
                        ));
                        store.completed = 0;
                        store.checkpoint_valid_at_load = false;
                    }
                }
            }
        }
        store.completed_at_load = store.completed;
        store.replay_journal(policy)?;
        Ok(store)
    }

    /// Opens the store against whatever plan signature the checkpoint
    /// itself records (0 when there is none) — the entry point for
    /// `cache repair`, which must preserve intact state verbatim.
    pub fn open_existing(path: &Path, policy: &mut dyn WritePolicy) -> Result<Self, DurableError> {
        let stored_fp = match std::fs::read(path) {
            Ok(bytes) => decode_header(&bytes).map(|h| h.plan_fp).unwrap_or(0),
            Err(_) => 0,
        };
        Self::open(path, stored_fp, policy)
    }

    fn replay_journal(&mut self, policy: &mut dyn WritePolicy) -> Result<(), DurableError> {
        let jpath = self.journal_path();
        let jbytes = match std::fs::read(&jpath) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(io_err(&jpath, e)),
            Ok(b) => b,
        };
        let dj = decode_journal(&jbytes);
        let mut rewrite = dj.torn;
        if dj.torn {
            let torn = jbytes.len().saturating_sub(dj.clean_len);
            self.events.push(event(
                "journal-torn",
                true,
                format!("{torn} damaged bytes past the clean prefix; truncating"),
            ));
            if let Some(tail) = jbytes.get(dj.clean_len..) {
                self.quarantine(tail, policy)?;
            }
        }
        let mut retained: Vec<u8> = Vec::new();
        let mut stale = 0usize;
        let mut kept = 0usize;
        let mut applied = 0usize;
        let mut applied_entries = 0usize;
        for (step, rec_fp, payload) in dj.records {
            if rec_fp != self.plan_fp {
                stale += 1;
                rewrite = true;
                continue;
            }
            if step <= self.completed {
                // Already folded into the checkpoint (a crash landed
                // between the checkpoint rename and the journal reset).
                retained.extend_from_slice(&encode_journal_record(step, rec_fp, &payload)?);
                kept += 1;
                continue;
            }
            if step == self.completed + 1 {
                for (k, v) in &payload.delta.l1 {
                    self.cache.l1.insert(*k, v.clone());
                    applied_entries += 1;
                }
                for (k, v) in &payload.delta.l2 {
                    self.cache.l2.insert(*k, v.clone());
                    applied_entries += 1;
                }
                for (k, v) in &payload.delta.l3 {
                    self.cache.l3.insert(*k, v.clone());
                    applied_entries += 1;
                }
                self.cache.evict_outside(TimeRange::new(
                    Millis(payload.window_start),
                    Millis(payload.window_end),
                ));
                self.completed = step;
                retained.extend_from_slice(&encode_journal_record(step, rec_fp, &payload)?);
                kept += 1;
                applied += 1;
                continue;
            }
            self.events.push(event(
                "journal-gap",
                true,
                format!(
                    "expected step {}, found {step}; truncating",
                    self.completed + 1
                ),
            ));
            rewrite = true;
            break;
        }
        if stale > 0 {
            self.events.push(event(
                "journal-stale-plan",
                false,
                format!("{stale} records from a different plan discarded"),
            ));
        }
        if applied > 0 {
            self.events.push(event(
                "journal-replayed",
                false,
                format!("replayed {applied} steps ({applied_entries} entries) past the checkpoint"),
            ));
            self.restored_entries += applied_entries;
        }
        if rewrite {
            self.write_journal(&retained, policy)?;
        }
        self.journal_records_at_load = kept;
        Ok(())
    }

    fn journal_path(&self) -> PathBuf {
        sibling(&self.path, ".journal")
    }

    fn write_journal(
        &self,
        bytes: &[u8],
        policy: &mut dyn WritePolicy,
    ) -> Result<(), DurableError> {
        write_atomic(
            &self.journal_path(),
            bytes,
            DurableOp::JournalWrite,
            DurableOp::JournalRename,
            policy,
        )
    }

    fn quarantine(&self, region: &[u8], policy: &mut dyn WritePolicy) -> Result<(), DurableError> {
        let mut framed = format!("QUAR {}\n", region.len()).into_bytes();
        framed.extend_from_slice(region);
        framed.push(b'\n');
        guarded_append(
            &sibling(&self.path, ".quarantine"),
            &framed,
            DurableOp::QuarantineAppend,
            policy,
        )
    }

    /// Journals the delta of a freshly completed step and advances the
    /// progress counter. The in-memory cache must already hold the
    /// step's result (the driver runs the window first, then journals).
    pub fn append_step(
        &mut self,
        step: u64,
        window: TimeRange,
        delta: SegmentPayload,
        policy: &mut dyn WritePolicy,
    ) -> Result<(), DurableError> {
        let payload = JournalPayload {
            window_start: window.start.0,
            window_end: window.end.0,
            delta,
        };
        let rec = encode_journal_record(step, self.plan_fp, &payload)?;
        guarded_append(&self.journal_path(), &rec, DurableOp::JournalAppend, policy)?;
        self.completed = step;
        Ok(())
    }

    /// Atomically replaces the checkpoint with the current state and
    /// resets the journal. Crash-ordering is safe in both directions:
    /// the journal is only emptied *after* the new checkpoint is
    /// visible, and a crash in between is healed by the skip-replay
    /// path on the next open.
    pub fn checkpoint(&mut self, policy: &mut dyn WritePolicy) -> Result<(), DurableError> {
        let bytes = encode_checkpoint(&self.cache, self.completed, self.plan_fp)?;
        write_atomic(
            &self.path,
            &bytes,
            DurableOp::CheckpointWrite,
            DurableOp::CheckpointRename,
            policy,
        )?;
        self.write_journal(&[], policy)?;
        self.completed_at_load = self.completed;
        self.journal_records_at_load = 0;
        self.checkpoint_valid_at_load = true;
        Ok(())
    }

    /// Forgets resumable progress (a run invoked without `--resume`):
    /// the warm cache is kept, the step counter restarts at zero, and
    /// stale journal records are dropped so they can never replay.
    pub fn discard_progress(&mut self, policy: &mut dyn WritePolicy) -> Result<(), DurableError> {
        if self.journal_records_at_load > 0 {
            self.write_journal(&[], policy)?;
            self.journal_records_at_load = 0;
        }
        if self.completed > 0 {
            self.events.push(event(
                "progress-discarded",
                false,
                format!(
                    "run restarted without --resume at completed step {}",
                    self.completed
                ),
            ));
        }
        self.completed = 0;
        if self.completed_at_load > 0 {
            self.checkpoint_valid_at_load = false;
        }
        self.completed_at_load = 0;
        Ok(())
    }

    /// Appends any not-yet-ledgered [`RecoveryEvent`]s to
    /// `<path>.ledger` as JSON lines.
    pub fn append_ledger(&mut self, policy: &mut dyn WritePolicy) -> Result<(), DurableError> {
        if self.ledgered >= self.events.len() {
            return Ok(());
        }
        let mut buf = Vec::new();
        for e in self.events.get(self.ledgered..).unwrap_or_default() {
            let json = serde_json::to_string(e).map_err(|err| codec_err("ledger event", err))?;
            buf.extend_from_slice(json.as_bytes());
            buf.push(b'\n');
        }
        guarded_append(
            &sibling(&self.path, ".ledger"),
            &buf,
            DurableOp::LedgerAppend,
            policy,
        )?;
        self.ledgered = self.events.len();
        Ok(())
    }

    /// Whether on-disk state lags the in-memory state — i.e. a final
    /// [`checkpoint`](Self::checkpoint) must run before exit.
    pub fn dirty(&self) -> bool {
        !self.checkpoint_valid_at_load
            || self.completed > self.completed_at_load
            || self.journal_records_at_load > 0
    }

    /// The restored (and since mutated) evidence cache.
    pub fn cache(&self) -> &EvidenceCache {
        &self.cache
    }

    /// Mutable access for the window driver.
    pub fn cache_mut(&mut self) -> &mut EvidenceCache {
        &mut self.cache
    }

    /// Last completed step (0 = nothing completed).
    pub fn completed(&self) -> u64 {
        self.completed
    }

    /// Every recovery event this open observed, in order.
    pub fn events(&self) -> &[RecoveryEvent] {
        &self.events
    }

    /// The base checkpoint path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The store's standing as a detector-style health row: `ok` while
    /// no corruption was detected, `detected` counting restored
    /// entries, so `daily` reports surface recovery alongside L1–L3.
    pub fn health(&self) -> DetectorHealth {
        let first_corrupt = self.events.iter().find(|e| e.corruption);
        DetectorHealth {
            detector: DetectorKind::Store,
            ok: first_corrupt.is_none(),
            error: first_corrupt.map(|e| format!("{}: {}", e.code, e.detail)),
            enabled: true,
            detected: self.restored_entries,
            elapsed_us: 0,
        }
    }
}

/// The nightly advance schedule: `steps` windows of `window_days`
/// days, the first starting at `start_day`, each advancing by
/// `advance_days`. Steps are 1-based.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DailyPlan {
    /// Day the first window starts at.
    pub start_day: i64,
    /// Width of every window, in days.
    pub window_days: i64,
    /// Days the window advances per step.
    pub advance_days: i64,
    /// Number of advances to run.
    pub steps: u64,
}

impl DailyPlan {
    /// The analysis window of 1-based `step`.
    pub fn window(&self, step: u64) -> TimeRange {
        let offset = i64::try_from(step.saturating_sub(1)).unwrap_or(i64::MAX);
        let start = self
            .start_day
            .saturating_add(offset.saturating_mul(self.advance_days));
        TimeRange::new(
            Millis::from_days(start),
            Millis::from_days(start.saturating_add(self.window_days)),
        )
    }

    /// Rejects degenerate schedules.
    pub fn validate(&self) -> Result<(), MineError> {
        if self.window_days < 1 {
            return Err(MineError::InvalidConfig {
                name: "window_days",
                reason: format!("must be >= 1 day, got {}", self.window_days),
            });
        }
        if self.advance_days < 1 {
            return Err(MineError::InvalidConfig {
                name: "advance_days",
                reason: format!("must be >= 1 day, got {}", self.advance_days),
            });
        }
        if self.steps < 1 {
            return Err(MineError::InvalidConfig {
                name: "steps",
                reason: "must run at least one step".to_string(),
            });
        }
        Ok(())
    }
}

/// Signature binding a resumable run to its exact inputs: the plan,
/// every enabled layer's config fingerprint, and the identity of the
/// log store. Any change ⇒ different signature ⇒ progress restarts
/// from step zero (the warm cache is kept — content addressing makes
/// stale entries plain misses). Deliberately *not* named
/// `*_fingerprint`: it folds no config struct of its own, and `par`
/// must stay out of it (thread count cannot change results).
pub fn plan_signature(
    store: &LogStore,
    service_ids: &[String],
    cfg: &PipelineConfig,
    plan: &DailyPlan,
) -> u64 {
    let mut f = Fnv::new();
    f.push_str("daily-plan");
    f.push_i64(plan.start_day);
    f.push_i64(plan.window_days);
    f.push_i64(plan.advance_days);
    f.push_u64(plan.steps);
    let sources = store.active_sources();
    match &cfg.l1 {
        Some(c) => {
            f.push_bool(true);
            f.push_u64(l1_fingerprint(c, &sources));
        }
        None => f.push_bool(false),
    }
    match &cfg.l2 {
        Some(c) => {
            f.push_bool(true);
            f.push_u64(l2_fingerprint(c));
        }
        None => f.push_bool(false),
    }
    match &cfg.l3 {
        Some(c) => {
            f.push_bool(true);
            f.push_u64(l3_fingerprint(c, service_ids));
        }
        None => f.push_bool(false),
    }
    f.push_u64(store.len() as u64);
    for s in &sources {
        f.push_u64(u64::from(s.0));
    }
    let records = store.records();
    if let Some(first) = records.first() {
        f.push_i64(first.client_ts.0);
    }
    if let Some(last) = records.last() {
        f.push_i64(last.client_ts.0);
    }
    f.finish()
}

struct KeySnapshot {
    l1: BTreeSet<EvidenceKey>,
    l2: BTreeSet<EvidenceKey>,
    l3: BTreeSet<EvidenceKey>,
}

fn key_snapshot(cache: &EvidenceCache) -> KeySnapshot {
    KeySnapshot {
        l1: cache.l1.keys().copied().collect(),
        l2: cache.l2.keys().copied().collect(),
        l3: cache.l3.keys().copied().collect(),
    }
}

/// Entries present now but absent from `before` — exactly what one
/// step inserted (content addressing: a key is never overwritten with
/// a different value, so key-set difference is the full delta).
fn delta_since(cache: &EvidenceCache, before: &KeySnapshot) -> SegmentPayload {
    SegmentPayload {
        l1: cache
            .l1
            .iter()
            .filter(|(k, _)| !before.l1.contains(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
        l2: cache
            .l2
            .iter()
            .filter(|(k, _)| !before.l2.contains(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
        l3: cache
            .l3
            .iter()
            .filter(|(k, _)| !before.l3.contains(k))
            .map(|(k, v)| (*k, v.clone()))
            .collect(),
    }
}

/// What a durable daily run reports back.
#[derive(Debug)]
pub struct DailyReport {
    /// Step the run resumed from (0 = started from the beginning).
    pub resumed_from: u64,
    /// Steps actually executed this invocation.
    pub steps_run: u64,
    /// The final window's full outcome (recomputed from cache hits
    /// when the run was already complete on open).
    pub final_outcome: WindowOutcome,
    /// Every recovery event of this run, in order.
    pub events: Vec<RecoveryEvent>,
    /// The store's health row (alongside the L1–L3 detectors).
    pub store_health: DetectorHealth,
    /// Cache entries held after the final step.
    pub cache_entries: usize,
    /// Cache entries restored at open (checkpoint + journal replay),
    /// before any step ran.
    pub loaded_entries: usize,
    /// Whether this run rewrote the checkpoint (false when a fully
    /// resumed run left the on-disk state untouched).
    pub checkpointed: bool,
}

/// Runs (or resumes) a whole daily advance crash-safely: open the
/// store, replay whatever survived, execute the remaining steps with
/// one journal append per completed step, and checkpoint atomically at
/// the end. `on_step` observes every executed step (for progress
/// output). With `resume` false, prior progress is discarded but the
/// warm cache is kept.
#[allow(clippy::too_many_arguments)] // lint:allow — the durable driver genuinely binds logs, plan, path, policy and callback in one call
pub fn run_daily_durable(
    logs: &LogStore,
    service_ids: &[String],
    cfg: &PipelineConfig,
    plan: &DailyPlan,
    cache_path: &Path,
    resume: bool,
    policy: &mut dyn WritePolicy,
    on_step: &mut dyn FnMut(u64, &WindowOutcome),
) -> Result<DailyReport, DurableError> {
    plan.validate()?;
    record(|r| {
        r.span_begin(
            "daily",
            &[
                ("steps", Field::from(plan.steps)),
                ("start_day", Field::from(plan.start_day)),
                ("window_days", Field::from(plan.window_days)),
                ("advance_days", Field::from(plan.advance_days)),
                ("resume", Field::from(resume)),
            ],
        );
    });
    let fp = plan_signature(logs, service_ids, cfg, plan);
    let mut store = DurableStore::open(cache_path, fp, policy)?;
    if !resume {
        store.discard_progress(policy)?;
    }
    store.append_ledger(policy)?;
    // Surface what opening the store observed (cold start, plan change,
    // corruption recovery, quarantine) as point events. The free-text
    // detail can carry filesystem paths, so only the stable code and
    // the corruption flag enter the deterministic trace.
    let events_seen = store.events().len();
    record(|r| {
        for e in store.events() {
            r.point(
                "durable.recovery",
                &[
                    ("code", Field::from(e.code.as_str())),
                    ("corruption", Field::from(e.corruption)),
                ],
            );
        }
    });
    let loaded_entries = store.cache().len();
    let resumed_from = store.completed();
    if resume {
        record(|r| {
            r.point(
                "durable.resume",
                &[("resumed_from", Field::from(resumed_from))],
            );
        });
    }
    let mut steps_run = 0u64;
    let mut final_outcome: Option<WindowOutcome> = None;
    let first = store.completed().saturating_add(1);
    for step in first..=plan.steps {
        let window = plan.window(step);
        record(|r| {
            r.span_begin(
                "daily.step",
                &[
                    ("step", Field::from(step)),
                    ("start_ms", Field::from(window.start.0)),
                    ("end_ms", Field::from(window.end.0)),
                ],
            );
        });
        let before = key_snapshot(store.cache());
        let outcome = run_window_cached(logs, window, service_ids, cfg, store.cache_mut())?;
        let delta = delta_since(store.cache(), &before);
        let delta_entries = delta.len();
        store.append_step(step, window, delta, policy)?;
        steps_run += 1;
        record(|r| {
            r.counter_add("durable.steps", 1);
            r.span_end(
                "daily.step",
                &[
                    ("step", Field::from(step)),
                    ("journaled", Field::from(delta_entries)),
                ],
            );
        });
        on_step(step, &outcome);
        final_outcome = Some(outcome);
    }
    let final_outcome = match final_outcome {
        Some(o) => o,
        None => {
            // Fully resumed: recompute the last window for the report.
            // Every probe hits, so the cache (and checkpoint bytes)
            // are unchanged.
            let window = plan.window(plan.steps);
            run_window_cached(logs, window, service_ids, cfg, store.cache_mut())?
        }
    };
    let checkpointed = store.dirty();
    if checkpointed {
        store.checkpoint(policy)?;
        record(|r| {
            r.counter_add("durable.checkpoints", 1);
            r.point(
                "durable.checkpoint",
                &[("entries", Field::from(store.cache().len()))],
            );
        });
    }
    store.append_ledger(policy)?;
    // Any event raised after open (none today, but the schema must not
    // silently drop future ones) plus the store's own health row.
    record(|r| {
        for e in store.events().iter().skip(events_seen) {
            r.point(
                "durable.recovery",
                &[
                    ("code", Field::from(e.code.as_str())),
                    ("corruption", Field::from(e.corruption)),
                ],
            );
        }
    });
    record_detector_health(&store.health());
    record(|r| {
        r.span_end(
            "daily",
            &[
                ("steps_run", Field::from(steps_run)),
                ("resumed_from", Field::from(resumed_from)),
                ("checkpointed", Field::from(checkpointed)),
            ],
        );
    });
    Ok(DailyReport {
        resumed_from,
        steps_run,
        final_outcome,
        events: store.events().to_vec(),
        store_health: store.health(),
        cache_entries: store.cache().len(),
        loaded_entries,
        checkpointed,
    })
}

/// Read-only integrity report over a store's on-disk files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreReport {
    /// Everything verification observed, corruption and otherwise.
    pub events: Vec<RecoveryEvent>,
    /// Entries that decode cleanly from the checkpoint.
    pub cache_entries: usize,
    /// Progress counter the checkpoint records.
    pub completed: u64,
    /// Intact journal records on disk.
    pub journal_records: usize,
}

impl StoreReport {
    /// Whether no corruption was detected anywhere.
    pub fn clean(&self) -> bool {
        !self.events.iter().any(|e| e.corruption)
    }
}

/// Verifies every checksum of the store at `path` without writing a
/// single byte — safe to run against a live store.
pub fn verify_store(path: &Path) -> Result<StoreReport, DurableError> {
    let mut events = Vec::new();
    let mut cache_entries = 0usize;
    let mut completed = 0u64;
    let mut plan_fp = 0u64;
    match std::fs::read(path) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            events.push(event(
                "missing",
                false,
                format!("no checkpoint at {}", path.display()),
            ));
        }
        Err(e) => return Err(io_err(path, e)),
        Ok(bytes) => {
            let d = decode_checkpoint(&bytes);
            events.extend(d.events);
            cache_entries = d.restored;
            completed = d.completed;
            plan_fp = d.plan_fp;
        }
    }
    let jpath = sibling(path, ".journal");
    let mut journal_records = 0usize;
    match std::fs::read(&jpath) {
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {}
        Err(e) => return Err(io_err(&jpath, e)),
        Ok(bytes) => {
            let dj = decode_journal(&bytes);
            if dj.torn {
                events.push(event(
                    "journal-torn",
                    true,
                    format!(
                        "{} damaged bytes past the clean prefix",
                        bytes.len().saturating_sub(dj.clean_len)
                    ),
                ));
            }
            let mut expect = completed + 1;
            for (step, rec_fp, _payload) in &dj.records {
                journal_records += 1;
                if *rec_fp != plan_fp {
                    continue;
                }
                if *step > completed && *step != expect {
                    events.push(event(
                        "journal-gap",
                        true,
                        format!("expected step {expect}, found {step}"),
                    ));
                    break;
                }
                if *step == expect {
                    expect += 1;
                }
            }
        }
    }
    Ok(StoreReport {
        events,
        cache_entries,
        completed,
        journal_records,
    })
}

/// Repairs the store at `path` in place: quarantines damage, replays
/// the journal's intact prefix, and rewrites a clean checkpoint (with
/// an emptied journal) atomically. Intact state is preserved verbatim.
pub fn repair_store(path: &Path) -> Result<StoreReport, DurableError> {
    let mut policy = NoopPolicy;
    let mut store = DurableStore::open_existing(path, &mut policy)?;
    store.checkpoint(&mut policy)?;
    store.events.push(event(
        "repaired",
        false,
        format!(
            "checkpoint rewritten with {} entries at completed step {}",
            store.cache.len(),
            store.completed
        ),
    ));
    store.append_ledger(&mut policy)?;
    Ok(StoreReport {
        events: store.events.clone(),
        cache_entries: store.cache.len(),
        completed: store.completed,
        journal_records: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_faults::crash::{corrupt_bytes, Corruption};
    use logdep_logstore::SourceId;
    use proptest::prelude::*;

    fn key(day: i64, fp: u64, digest: u64) -> EvidenceKey {
        EvidenceKey {
            fingerprint: fp,
            start: day * MS_PER_DAY,
            end: (day + 1) * MS_PER_DAY,
            digest,
        }
    }

    fn sample_cache() -> EvidenceCache {
        let mut c = EvidenceCache::new();
        c.l1.insert(key(0, 1, 11), vec![(3, 4, true), (0, 2, false)]);
        c.l1.insert(key(1, 1, 12), vec![(1, 1, true)]);
        let mut bg = BigramCounts::default();
        bg.joint.insert((SourceId(0), SourceId(1)), 5);
        bg.first_margin.insert(SourceId(0), 5);
        bg.second_margin.insert(SourceId(1), 5);
        bg.total = 9;
        c.l2.insert(key(1, 2, 21), bg);
        let mut l3 = L3DayCounts::default();
        l3.citations.insert((SourceId(2), 0), 7);
        l3.scanned = 40;
        l3.stopped = 2;
        c.l3.insert(key(2, 3, 31), l3);
        c
    }

    fn caches_equal(a: &EvidenceCache, b: &EvidenceCache) -> bool {
        a.l1 == b.l1 && a.l2 == b.l2 && a.l3 == b.l3
    }

    /// A store path in a fresh scratch dir with no leftover siblings.
    fn fresh_store_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("logdep-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let path = dir.join(name);
        for suffix in [
            "",
            ".journal",
            ".ledger",
            ".quarantine",
            ".tmp",
            ".journal.tmp",
        ] {
            match std::fs::remove_file(sibling(&path, suffix)) {
                Ok(()) | Err(_) => {}
            }
        }
        path
    }

    #[test]
    fn checkpoint_roundtrip_is_byte_stable() {
        let cache = sample_cache();
        let bytes = encode_checkpoint(&cache, 4, 99).expect("encode");
        let d = decode_checkpoint(&bytes);
        assert!(d.header_ok && d.version_ok && d.intact, "{:?}", d.events);
        assert!(d.events.is_empty());
        assert_eq!(d.completed, 4);
        assert_eq!(d.plan_fp, 99);
        assert_eq!(d.restored, cache.len());
        assert!(caches_equal(&d.cache, &cache));
        let again = encode_checkpoint(&d.cache, d.completed, d.plan_fp).expect("re-encode");
        assert_eq!(again, bytes, "checkpoint encoding is not a pure function");
    }

    #[test]
    fn empty_checkpoint_roundtrips() {
        let bytes = encode_checkpoint(&EvidenceCache::new(), 0, 7).expect("encode");
        let d = decode_checkpoint(&bytes);
        assert!(d.intact && d.events.is_empty());
        assert_eq!(d.restored, 0);
    }

    #[test]
    fn header_damage_discards_the_checkpoint() {
        let mut bytes = encode_checkpoint(&sample_cache(), 2, 5).expect("encode");
        bytes[3] ^= 0x10; // inside the magic
        let d = decode_checkpoint(&bytes);
        assert!(!d.header_ok && !d.intact);
        assert!(d
            .events
            .iter()
            .any(|e| e.code == "checkpoint-header-corrupt"));
        assert_eq!(d.restored, 0);
        assert_eq!(d.quarantined.len(), 1);
        assert_eq!(d.quarantined[0], bytes);
    }

    #[test]
    fn segment_damage_resyncs_and_restores_the_rest() {
        let cache = sample_cache();
        let bytes = encode_checkpoint(&cache, 2, 5).expect("encode");
        let header_end = find_byte(&bytes, 0, b'\n').expect("header");
        // Damage the first segment's header line; later segments must
        // still be found via the resync marker.
        let mut damaged = bytes.clone();
        damaged[header_end + 2] ^= 0x01;
        let d = decode_checkpoint(&damaged);
        assert!(!d.intact);
        assert!(d.events.iter().any(|e| e.code == "segment-corrupt"));
        assert!(d.restored > 0, "resync recovered nothing");
        assert!(d.restored < cache.len(), "damage restored everything?");
        for (k, v) in &d.cache.l1 {
            assert_eq!(cache.l1.get(k), Some(v));
        }
        assert!(!d.quarantined.is_empty());
    }

    #[test]
    fn truncation_at_exact_segment_boundary_is_detected() {
        let bytes = encode_checkpoint(&sample_cache(), 2, 5).expect("encode");
        // Cut the entire last segment (a "clean" truncation no payload
        // checksum can see — the header's segment count catches it).
        let last_seg = {
            let mut at = 0;
            let mut last = None;
            while let Some(i) = find_resync(&bytes, at) {
                last = Some(i + 1);
                at = i + 1;
            }
            last.expect("no segment markers")
        };
        let d = decode_checkpoint(&bytes[..last_seg]);
        assert!(!d.intact);
        assert!(d.events.iter().any(|e| e.code == "checkpoint-truncated"));
    }

    #[test]
    fn version_mismatch_is_a_cold_start_not_corruption() {
        let cache = sample_cache();
        let bytes = encode_checkpoint(&cache, 2, 5).expect("encode");
        // Re-stamp the header with a future version (and a matching
        // checksum, as a future writer would).
        let n = 3u64;
        let hfnv = header_fnv(EvidenceCache::VERSION + 1, n, 2, 5);
        let header_end = find_byte(&bytes, 0, b'\n').expect("header");
        let mut restamped =
            format!("{MAGIC} {} {n} 2 5 {hfnv}\n", EvidenceCache::VERSION + 1).into_bytes();
        restamped.extend_from_slice(&bytes[header_end + 1..]);
        let d = decode_checkpoint(&restamped);
        assert!(d.header_ok && !d.version_ok);
        assert!(d
            .events
            .iter()
            .any(|e| e.code == "version-mismatch" && !e.corruption));
        assert_eq!(d.restored, 0);
    }

    fn sample_journal_records() -> Vec<(u64, u64, JournalPayload)> {
        (1..=3u64)
            .map(|step| {
                let mut delta = SegmentPayload::default();
                delta
                    .l1
                    .push((key(step as i64, 1, step), vec![(step as u32, 0, true)]));
                (
                    step,
                    77u64,
                    JournalPayload {
                        window_start: 0,
                        window_end: 10 * MS_PER_DAY,
                        delta,
                    },
                )
            })
            .collect()
    }

    fn encode_records(records: &[(u64, u64, JournalPayload)]) -> Vec<u8> {
        let mut out = Vec::new();
        for (step, fp, payload) in records {
            out.extend_from_slice(&encode_journal_record(*step, *fp, payload).expect("encode"));
        }
        out
    }

    #[test]
    fn journal_roundtrips_and_tears_to_a_prefix() {
        let records = sample_journal_records();
        let bytes = encode_records(&records);
        let dj = decode_journal(&bytes);
        assert!(!dj.torn);
        assert_eq!(dj.records, records);
        assert_eq!(dj.clean_len, bytes.len());

        let cut = bytes.len() - 3;
        let dj = decode_journal(&bytes[..cut]);
        assert!(dj.torn);
        assert_eq!(dj.records, records[..2]);
        assert_eq!(&bytes[..dj.clean_len], &encode_records(&records[..2])[..]);
    }

    #[test]
    fn store_replays_journal_after_a_crash_without_checkpoint() {
        let path = fresh_store_path("replay.ck");
        let mut policy = NoopPolicy;
        let mut store = DurableStore::open(&path, 77, &mut policy).expect("open");
        assert!(store.events().iter().any(|e| e.code == "cold-start"));
        let window = TimeRange::new(Millis(0), Millis(10 * MS_PER_DAY));
        for (step, _fp, payload) in sample_journal_records() {
            for (k, v) in &payload.delta.l1 {
                store.cache_mut().l1.insert(*k, v.clone());
            }
            store
                .append_step(step, window, payload.delta, &mut policy)
                .expect("append");
        }
        let live_cache = store.cache().clone();
        drop(store); // simulated kill: no checkpoint ever written

        let reopened = DurableStore::open(&path, 77, &mut policy).expect("reopen");
        assert_eq!(reopened.completed(), 3);
        assert!(caches_equal(reopened.cache(), &live_cache));
        assert!(reopened
            .events()
            .iter()
            .any(|e| e.code == "journal-replayed"));
        assert!(reopened.dirty());
    }

    #[test]
    fn checkpointed_store_reopens_clean_and_byte_identical() {
        let path = fresh_store_path("clean.ck");
        let mut policy = NoopPolicy;
        let mut store = DurableStore::open(&path, 42, &mut policy).expect("open");
        *store.cache_mut() = sample_cache();
        store.completed = 5;
        store.checkpoint(&mut policy).expect("checkpoint");
        let on_disk = std::fs::read(&path).expect("read");

        let mut reopened = DurableStore::open(&path, 42, &mut policy).expect("reopen");
        assert!(reopened.events().is_empty(), "{:?}", reopened.events());
        assert!(!reopened.dirty());
        assert_eq!(reopened.completed(), 5);
        assert!(caches_equal(reopened.cache(), &sample_cache()));
        reopened.checkpoint(&mut policy).expect("re-checkpoint");
        assert_eq!(std::fs::read(&path).expect("read"), on_disk);
    }

    #[test]
    fn plan_change_keeps_the_warm_cache_but_restarts_progress() {
        let path = fresh_store_path("plan.ck");
        let mut policy = NoopPolicy;
        let mut store = DurableStore::open(&path, 42, &mut policy).expect("open");
        *store.cache_mut() = sample_cache();
        store.completed = 5;
        store.checkpoint(&mut policy).expect("checkpoint");

        let reopened = DurableStore::open(&path, 43, &mut policy).expect("reopen");
        assert_eq!(reopened.completed(), 0);
        assert_eq!(reopened.cache().len(), sample_cache().len());
        assert!(reopened
            .events()
            .iter()
            .any(|e| e.code == "plan-changed" && !e.corruption));
        assert!(reopened.dirty());
    }

    #[test]
    fn discard_progress_resets_counter_and_journal() {
        let path = fresh_store_path("discard.ck");
        let mut policy = NoopPolicy;
        let mut store = DurableStore::open(&path, 77, &mut policy).expect("open");
        let window = TimeRange::new(Millis(0), Millis(10 * MS_PER_DAY));
        store
            .append_step(1, window, SegmentPayload::default(), &mut policy)
            .expect("append");
        drop(store);
        let mut store = DurableStore::open(&path, 77, &mut policy).expect("reopen");
        assert_eq!(store.completed(), 1);
        store.discard_progress(&mut policy).expect("discard");
        assert_eq!(store.completed(), 0);
        drop(store);
        let store = DurableStore::open(&path, 77, &mut policy).expect("reopen2");
        assert_eq!(store.completed(), 0, "discarded journal replayed");
    }

    #[test]
    fn verify_then_repair_heals_a_bit_flipped_checkpoint() {
        let path = fresh_store_path("repair.ck");
        let mut policy = NoopPolicy;
        let mut store = DurableStore::open(&path, 42, &mut policy).expect("open");
        *store.cache_mut() = sample_cache();
        store.completed = 5;
        store.checkpoint(&mut policy).expect("checkpoint");
        assert!(verify_store(&path).expect("verify").clean());

        let mut bytes = std::fs::read(&path).expect("read");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x04;
        std::fs::write(&path, &bytes).expect("damage"); // lint:allow(non-atomic-persist) — deliberately simulating torn storage in a test

        let report = verify_store(&path).expect("verify damaged");
        assert!(!report.clean());
        let repaired = repair_store(&path).expect("repair");
        assert!(repaired.cache_entries <= sample_cache().len());
        let after = verify_store(&path).expect("verify repaired");
        assert!(after.clean(), "{:?}", after.events);
        assert!(std::fs::metadata(sibling(&path, ".quarantine")).is_ok());
        assert!(std::fs::metadata(sibling(&path, ".ledger")).is_ok());
    }

    #[test]
    fn daily_plan_windows_and_validation() {
        let plan = DailyPlan {
            start_day: 3,
            window_days: 7,
            advance_days: 1,
            steps: 4,
        };
        assert!(plan.validate().is_ok());
        assert_eq!(
            plan.window(1),
            TimeRange::new(Millis::from_days(3), Millis::from_days(10))
        );
        assert_eq!(
            plan.window(4),
            TimeRange::new(Millis::from_days(6), Millis::from_days(13))
        );
        assert!(DailyPlan {
            window_days: 0,
            ..plan
        }
        .validate()
        .is_err());
        assert!(DailyPlan {
            advance_days: 0,
            ..plan
        }
        .validate()
        .is_err());
        assert!(DailyPlan { steps: 0, ..plan }.validate().is_err());
    }

    fn cache_from(entries: &[(u64, i64, u64)]) -> EvidenceCache {
        let mut c = EvidenceCache::new();
        for &(fp, day, digest) in entries {
            match fp % 3 {
                0 => {
                    c.l1.insert(
                        key(day, fp, digest),
                        vec![(fp as u32, digest as u32, day % 2 == 0)],
                    );
                }
                1 => {
                    let mut bg = BigramCounts::default();
                    bg.joint
                        .insert((SourceId(fp as u32 % 7), SourceId(digest as u32 % 7)), fp);
                    bg.total = digest;
                    c.l2.insert(key(day, fp, digest), bg);
                }
                _ => {
                    let mut l3 = L3DayCounts::default();
                    l3.citations
                        .insert((SourceId(fp as u32 % 7), digest as usize % 5), fp);
                    l3.scanned = digest;
                    c.l3.insert(key(day, fp, digest), l3);
                }
            }
        }
        c
    }

    proptest! {
        #[test]
        fn intact_checkpoints_roundtrip_exactly(
            entries in prop::collection::vec((any::<u64>(), 0i64..6i64, any::<u64>()), 0..12),
            completed in 0u64..30,
            plan_fp in any::<u64>(),
        ) {
            let cache = cache_from(&entries);
            let bytes = encode_checkpoint(&cache, completed, plan_fp).expect("encode");
            let d = decode_checkpoint(&bytes);
            prop_assert!(d.intact && d.header_ok && d.version_ok, "{:?}", d.events);
            prop_assert_eq!(d.completed, completed);
            prop_assert_eq!(d.plan_fp, plan_fp);
            prop_assert!(caches_equal(&d.cache, &cache));
            let again = encode_checkpoint(&d.cache, d.completed, d.plan_fp).expect("re-encode");
            prop_assert_eq!(again, bytes);
        }

        #[test]
        fn corrupted_checkpoints_are_detected_and_never_misdecoded(
            entries in prop::collection::vec((any::<u64>(), 0i64..6i64, any::<u64>()), 0..10),
            completed in 0u64..30,
            plan_fp in any::<u64>(),
            mode in 0usize..3,
            seed in any::<u64>(),
        ) {
            let cache = cache_from(&entries);
            let bytes = encode_checkpoint(&cache, completed, plan_fp).expect("encode");
            let kind = Corruption::ALL[mode];
            let corrupted = corrupt_bytes(&bytes, kind, seed);
            prop_assert!(corrupted != bytes, "injector returned the input");
            let d = decode_checkpoint(&corrupted);
            // Every corruption is detected...
            prop_assert!(!d.intact, "{kind} (seed {seed}) went undetected");
            prop_assert!(
                d.events.iter().any(|e| e.corruption),
                "{kind} (seed {seed}) raised no corruption event"
            );
            // ...and nothing is ever mis-decoded: whatever was restored
            // is a verbatim subset of the truth.
            for (k, v) in &d.cache.l1 {
                prop_assert_eq!(cache.l1.get(k), Some(v));
            }
            for (k, v) in &d.cache.l2 {
                prop_assert_eq!(cache.l2.get(k), Some(v));
            }
            for (k, v) in &d.cache.l3 {
                prop_assert_eq!(cache.l3.get(k), Some(v));
            }
        }

        #[test]
        fn corrupted_journals_decode_to_an_exact_record_prefix(
            entries in prop::collection::vec((any::<u64>(), 0i64..6i64, any::<u64>()), 1..8),
            plan_fp in any::<u64>(),
            mode in 0usize..3,
            seed in any::<u64>(),
        ) {
            let records: Vec<(u64, u64, JournalPayload)> = entries
                .chunks(2)
                .enumerate()
                .map(|(i, chunk)| {
                    (
                        i as u64 + 1,
                        plan_fp,
                        JournalPayload {
                            window_start: 0,
                            window_end: 10 * MS_PER_DAY,
                            delta: SegmentPayload {
                                l1: cache_from(chunk).l1.into_iter().collect(),
                                l2: cache_from(chunk).l2.into_iter().collect(),
                                l3: cache_from(chunk).l3.into_iter().collect(),
                            },
                        },
                    )
                })
                .collect();
            let bytes = encode_records(&records);
            let kind = Corruption::ALL[mode];
            let corrupted = corrupt_bytes(&bytes, kind, seed);
            let dj = decode_journal(&corrupted);
            // An append-only log damaged anywhere decodes to an exact
            // prefix of what was appended — never reordered, invented,
            // or silently altered records.
            prop_assert!(dj.records.len() <= records.len());
            prop_assert_eq!(&dj.records[..], &records[..dj.records.len()]);
            prop_assert_eq!(
                corrupted.get(..dj.clean_len),
                bytes.get(..dj.clean_len),
                "clean prefix bytes diverge from the original log"
            );
        }
    }
}
