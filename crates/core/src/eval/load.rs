//! The system-load study (§4.9 of the paper, Figure 9).
//!
//! The static reference model cannot say whether a dependency was
//! *realized* in a given hour, so the paper uses technique L3 — shown
//! reliable in §4.8 — as a dynamic oracle: for every hour, the
//! L3-detected (and reference-confirmed) dependencies are mapped to
//! application pairs, and `p₁` / `p₂` measure the fraction of those
//! pairs techniques L1 and L2 recover in the same hour. Regressing the
//! percentages on the hourly log volume shows L1's slope strictly
//! negative and L2's compatible with zero.

use crate::l1::{run_l1, L1Config};
use crate::l2::{run_l2, L2Config};
use crate::l3::{run_l3, L3Config};
use crate::model::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_stats::regression::{linear_fit, Interval};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// Configuration of the load experiment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadConfig {
    /// Days to cover (hours = 24 × days).
    pub days: u32,
    /// L1 parameters (slot width is forced to the hourly ranges).
    pub l1: L1Config,
    /// L2 parameters.
    pub l2: L2Config,
    /// L3 oracle parameters (stop patterns etc.).
    pub l3: L3Config,
    /// Applications excluded from the oracle — the paper removes 4
    /// "which do not log all of their invocations".
    pub exclude_apps: Vec<SourceId>,
    /// Regression CI level (the paper uses 95 %).
    pub ci_level: f64,
    /// Minimum number of oracle pairs for an hour to enter the
    /// regression (hours with an empty oracle are uninformative).
    pub min_oracle_pairs: usize,
}

/// One hourly observation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourPoint {
    /// Hour index since the scenario epoch.
    pub hour: i64,
    /// Total logs in the hour.
    pub n_logs: usize,
    /// Number of oracle (realized, reference-confirmed) pairs.
    pub oracle_pairs: usize,
    /// Fraction of oracle pairs found by L1.
    pub p1: f64,
    /// Fraction of oracle pairs found by L2.
    pub p2: f64,
    /// False-positive ratio of L1's positives in the hour.
    pub fp1_ratio: f64,
    /// False-positive ratio of L2's positives in the hour.
    pub fp2_ratio: f64,
}

/// The full experiment result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoadExperiment {
    /// Hourly observations that met `min_oracle_pairs`.
    pub points: Vec<HourPoint>,
    /// CI for the slope of `p1 ~ normalized load`.
    pub slope_p1: Interval,
    /// CI for the slope of `p2 ~ normalized load`.
    pub slope_p2: Interval,
    /// CI for the slope of L1's FP ratio against load.
    pub slope_fp1: Interval,
    /// CI for the slope of L2's FP ratio against load.
    pub slope_fp2: Interval,
    /// Normal-QQ data of the p1 regression residuals (model check).
    pub qq_p1: Vec<(f64, f64)>,
    /// Normal-QQ data of the p2 regression residuals.
    pub qq_p2: Vec<(f64, f64)>,
}

/// Runs the load experiment.
///
/// `service_ids` and `owners` describe the directory: `owners[i]` is
/// the application implementing `service_ids[i]` (needed to map an
/// L3-detected `(app, service)` onto the `app ↔ owner` pair the other
/// two techniques can see).
pub fn load_experiment(
    store: &LogStore,
    service_ids: &[String],
    owners: &[SourceId],
    reference_pairs: &PairModel,
    cfg: &LoadConfig,
) -> crate::Result<LoadExperiment> {
    if service_ids.len() != owners.len() {
        return Err(crate::MineError::InvalidConfig {
            name: "owners",
            reason: format!(
                "length {} does not match service_ids length {}",
                owners.len(),
                service_ids.len()
            ),
        });
    }
    let excluded: BTreeSet<SourceId> = cfg.exclude_apps.iter().copied().collect();

    let mut points = Vec::new();
    for hour in 0..(cfg.days as i64 * 24) {
        let range = TimeRange::hour_of_day(hour / 24, hour % 24);
        let n_logs = store.range(range).len();
        if n_logs == 0 {
            continue;
        }

        // Oracle: L3-realized dependencies, intersected with the static
        // reference (L3's few false positives must not pollute the
        // oracle), excluding unreliable loggers.
        let l3 = run_l3(store, range, service_ids, &cfg.l3)?;
        let mut oracle = PairModel::new();
        for (app, svc) in l3.detected.iter() {
            if excluded.contains(&app) {
                continue;
            }
            let owner = owners[svc];
            if app != owner && reference_pairs.contains(app, owner) {
                oracle.insert(app, owner);
            }
        }
        if oracle.len() < cfg.min_oracle_pairs {
            continue;
        }

        // Sources involved in the oracle this hour.
        let mut sources: Vec<SourceId> = oracle
            .iter()
            .flat_map(|(a, b)| [a, b])
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect();
        sources.sort_unstable();

        let l1 = run_l1(store, range, &sources, &cfg.l1)?;
        let l2 = run_l2(store, range, &cfg.l2)?;

        let found = |detected: &PairModel| {
            oracle
                .iter()
                .filter(|&(a, b)| detected.contains(a, b))
                .count()
        };
        let fp_ratio = |detected: &PairModel| {
            let total = detected.len();
            if total == 0 {
                return 0.0;
            }
            let fp = detected
                .iter()
                .filter(|&(a, b)| !reference_pairs.contains(a, b))
                .count();
            fp as f64 / total as f64
        };

        points.push(HourPoint {
            hour,
            n_logs,
            oracle_pairs: oracle.len(),
            p1: found(&l1.detected) as f64 / oracle.len() as f64,
            p2: found(&l2.detected) as f64 / oracle.len() as f64,
            fp1_ratio: fp_ratio(&l1.detected),
            fp2_ratio: fp_ratio(&l2.detected),
        });
    }

    if points.len() < 3 {
        return Err(crate::MineError::NoData("load experiment hours"));
    }

    // Regress on normalized load, as in the paper's right graph.
    let max_logs = points.iter().map(|p| p.n_logs).max().unwrap_or(1) as f64;
    let x: Vec<f64> = points.iter().map(|p| p.n_logs as f64 / max_logs).collect();
    let fit = |y: Vec<f64>| -> crate::Result<(Interval, Vec<(f64, f64)>)> {
        let f = linear_fit(&x, &y)?;
        let ci = f.slope_ci(cfg.ci_level)?;
        let qq = f.qq_points().unwrap_or_default();
        Ok((ci, qq))
    };
    let (slope_p1, qq_p1) = fit(points.iter().map(|p| p.p1).collect())?;
    let (slope_p2, qq_p2) = fit(points.iter().map(|p| p.p2).collect())?;
    let (slope_fp1, _) = fit(points.iter().map(|p| p.fp1_ratio).collect())?;
    let (slope_fp2, _) = fit(points.iter().map(|p| p.fp2_ratio).collect())?;

    Ok(LoadExperiment {
        points,
        slope_p1,
        slope_p2,
        slope_fp1,
        slope_fp2,
        qq_p1,
        qq_p2,
    })
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            days: 7,
            l1: L1Config::default(),
            l2: L2Config::default(),
            l3: L3Config::default(),
            exclude_apps: Vec::new(),
            ci_level: 0.95,
            min_oracle_pairs: 3,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owners_length_is_validated() {
        let mut store = LogStore::new();
        store.finalize();
        let err = load_experiment(
            &store,
            &["A".to_owned()],
            &[],
            &PairModel::new(),
            &LoadConfig::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn empty_store_has_no_data() {
        let mut store = LogStore::new();
        store.finalize();
        let err = load_experiment(&store, &[], &[], &PairModel::new(), &LoadConfig::default());
        assert!(matches!(err, Err(crate::MineError::NoData(_))));
    }
}
