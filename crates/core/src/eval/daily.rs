//! Per-day evaluation against a reference model.
//!
//! The paper applies each technique "for each day independently, which
//! allows us to quantify the accuracy of our observations by computing
//! confidence intervals using the robust order statistics method" —
//! with 7 daily values, the reported 0.984-level CI for the median is
//! exactly the [min, max] of the dailies.

use crate::l1::{run_l1, L1Config};
use crate::l2::{run_l2, L2Config};
use crate::l3::{run_l3, L3Config};
use crate::model::{diff_app_service, diff_pairs, AppServiceModel, PairModel};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_stats::order_stats::{median_ci, QuantileCi};
use serde::{Deserialize, Serialize};

/// One day's detection outcome.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DailyOutcome {
    /// Day index since the scenario epoch.
    pub day: i64,
    /// True positives.
    pub tp: usize,
    /// False positives.
    pub fp: usize,
    /// False negatives (reference dependencies not detected).
    pub fn_: usize,
    /// True-positive ratio tp / (tp + fp).
    pub tpr: f64,
}

/// A per-day series with the paper's summary statistics.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct DailySeries {
    /// One outcome per day, in day order.
    pub days: Vec<DailyOutcome>,
}

impl DailySeries {
    /// True-positive counts per day.
    pub fn tp_values(&self) -> Vec<f64> {
        self.days.iter().map(|d| d.tp as f64).collect()
    }

    /// False-positive counts per day.
    pub fn fp_values(&self) -> Vec<f64> {
        self.days.iter().map(|d| d.fp as f64).collect()
    }

    /// True-positive ratios per day.
    pub fn tpr_values(&self) -> Vec<f64> {
        self.days.iter().map(|d| d.tpr).collect()
    }

    /// Order-statistics CI for the median true-positive ratio. With 7
    /// days, `level = 0.984` reproduces the paper's interval exactly.
    pub fn tpr_median_ci(&self, level: f64) -> crate::Result<QuantileCi> {
        Ok(median_ci(&self.tpr_values(), level)?)
    }
}

/// Runs technique L1 for each of `days` days and diffs against the
/// reference pair model.
pub fn l1_daily(
    store: &LogStore,
    days: u32,
    sources: &[SourceId],
    cfg: &L1Config,
    reference: &PairModel,
) -> crate::Result<DailySeries> {
    let mut series = DailySeries::default();
    for day in 0..days as i64 {
        let res = run_l1(store, TimeRange::day(day), sources, cfg)?;
        let d = diff_pairs(&res.detected, reference);
        series.days.push(DailyOutcome {
            day,
            tp: d.tp(),
            fp: d.fp(),
            fn_: d.fn_(),
            tpr: d.true_positive_ratio(),
        });
    }
    Ok(series)
}

/// Runs technique L2 for each day and diffs against the reference pair
/// model.
pub fn l2_daily(
    store: &LogStore,
    days: u32,
    cfg: &L2Config,
    reference: &PairModel,
) -> crate::Result<DailySeries> {
    let mut series = DailySeries::default();
    for day in 0..days as i64 {
        let res = run_l2(store, TimeRange::day(day), cfg)?;
        let d = diff_pairs(&res.detected, reference);
        series.days.push(DailyOutcome {
            day,
            tp: d.tp(),
            fp: d.fp(),
            fn_: d.fn_(),
            tpr: d.true_positive_ratio(),
        });
    }
    Ok(series)
}

/// Runs technique L3 for each day and diffs against the reference
/// app→service model.
pub fn l3_daily(
    store: &LogStore,
    days: u32,
    service_ids: &[String],
    cfg: &L3Config,
    reference: &AppServiceModel,
) -> crate::Result<DailySeries> {
    let mut series = DailySeries::default();
    for day in 0..days as i64 {
        let res = run_l3(store, TimeRange::day(day), service_ids, cfg)?;
        let d = diff_app_service(&res.detected, reference);
        series.days.push(DailyOutcome {
            day,
            tp: d.tp(),
            fp: d.fp(),
            fn_: d.fn_(),
            tpr: d.true_positive_ratio(),
        });
    }
    Ok(series)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(tprs: &[f64]) -> DailySeries {
        DailySeries {
            days: tprs
                .iter()
                .enumerate()
                .map(|(i, &tpr)| DailyOutcome {
                    day: i as i64,
                    tp: (tpr * 100.0) as usize,
                    fp: 100 - (tpr * 100.0) as usize,
                    fn_: 10,
                    tpr,
                })
                .collect(),
        }
    }

    #[test]
    fn value_extractors() {
        let s = series(&[0.5, 0.7]);
        assert_eq!(s.tp_values(), vec![50.0, 70.0]);
        assert_eq!(s.fp_values(), vec![50.0, 30.0]);
        assert_eq!(s.tpr_values(), vec![0.5, 0.7]);
    }

    #[test]
    fn seven_day_ci_is_min_max_at_0984() {
        let s = series(&[0.66, 0.63, 0.73, 0.70, 0.68, 0.71, 0.65]);
        let ci = s.tpr_median_ci(0.984).unwrap();
        assert_eq!((ci.lower, ci.upper), (0.63, 0.73));
    }

    #[test]
    fn empty_series_ci_errors() {
        let s = DailySeries::default();
        assert!(s.tpr_median_ci(0.95).is_err());
    }
}
