//! The timeout-influence study (§4.7 of the paper: Figure 7, Table 2).
//!
//! For each finite timeout and the infinite baseline, technique L2 runs
//! on every day; the paired daily differences `tpr_to − tpr_inf` and
//! `tp_to − tp_inf` are summarized by a median with an order-statistics
//! CI (0.98 level in the paper) and by the exact Wilcoxon signed-rank
//! test (p = 0.0156 when all 7 days agree in sign).

use super::daily::{l2_daily, DailySeries};
use crate::l2::L2Config;
use crate::model::PairModel;
use logdep_logstore::LogStore;
use logdep_stats::order_stats::median_ci;
use logdep_stats::wilcoxon::{signed_rank, Alternative};
use serde::{Deserialize, Serialize};

/// One row of Table 2 (plus the Wilcoxon p-values).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeoutRow {
    /// The finite timeout in milliseconds.
    pub timeout_ms: i64,
    /// Median of the per-day differences `tpr_to − tpr_inf`,
    /// in percentage points (the paper's units).
    pub d_tpr_median: f64,
    /// Order-statistics CI bounds for the tpr difference median.
    pub d_tpr_ci: (f64, f64),
    /// Median of `tp_to − tp_inf` (absolute counts).
    pub d_tp_median: f64,
    /// CI bounds for the tp difference median.
    pub d_tp_ci: (f64, f64),
    /// Exact two-sided Wilcoxon signed-rank p for the tpr differences.
    pub wilcoxon_p_tpr: f64,
    /// Exact two-sided Wilcoxon signed-rank p for the tp differences.
    pub wilcoxon_p_tp: f64,
}

/// The full study: the infinite-timeout baseline plus one row per
/// finite timeout, with the underlying daily series kept for plotting
/// (Figure 7 uses the per-day positives at each timeout).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeoutStudy {
    /// Daily series with no timeout (the baseline).
    pub baseline: DailySeries,
    /// Daily series per finite timeout, same order as `rows`.
    pub series: Vec<(i64, DailySeries)>,
    /// Table 2 rows.
    pub rows: Vec<TimeoutRow>,
    /// CI level used for the medians (the paper: 0.98).
    pub ci_level: f64,
}

/// Runs the study over `days` days for the given finite timeouts (ms).
pub fn timeout_study(
    store: &LogStore,
    days: u32,
    timeouts_ms: &[i64],
    base_cfg: &L2Config,
    reference: &PairModel,
    ci_level: f64,
) -> crate::Result<TimeoutStudy> {
    let inf_cfg = L2Config {
        timeout_ms: None,
        ..base_cfg.clone()
    };
    let baseline = l2_daily(store, days, &inf_cfg, reference)?;

    let mut series = Vec::new();
    let mut rows = Vec::new();
    for &to in timeouts_ms {
        let cfg = L2Config {
            timeout_ms: Some(to),
            ..base_cfg.clone()
        };
        let s = l2_daily(store, days, &cfg, reference)?;

        // Paired daily differences. tpr in percentage points.
        let d_tpr: Vec<f64> = s
            .tpr_values()
            .iter()
            .zip(baseline.tpr_values())
            .map(|(a, b)| (a - b) * 100.0)
            .collect();
        let d_tp: Vec<f64> = s
            .tp_values()
            .iter()
            .zip(baseline.tp_values())
            .map(|(a, b)| a - b)
            .collect();

        let ci_tpr = median_ci(&d_tpr, ci_level)?;
        let ci_tp = median_ci(&d_tp, ci_level)?;
        let w_tpr = signed_rank(&d_tpr, Alternative::TwoSided)
            .map(|r| r.p_value)
            .unwrap_or(1.0);
        let w_tp = signed_rank(&d_tp, Alternative::TwoSided)
            .map(|r| r.p_value)
            .unwrap_or(1.0);

        rows.push(TimeoutRow {
            timeout_ms: to,
            d_tpr_median: ci_tpr.point,
            d_tpr_ci: (ci_tpr.lower, ci_tpr.upper),
            d_tp_median: ci_tp.point,
            d_tp_ci: (ci_tp.lower, ci_tp.upper),
            wilcoxon_p_tpr: w_tpr,
            wilcoxon_p_tp: w_tp,
        });
        series.push((to, s));
    }

    Ok(TimeoutStudy {
        baseline,
        series,
        rows,
        ci_level,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    // End-to-end behaviour of timeout_study is covered by integration
    // tests against the simulator; here we check the difference math on
    // hand-built series via the public row computation path, by feeding
    // a tiny synthetic store.
    use logdep_logstore::time::MS_PER_DAY;
    use logdep_logstore::{LogRecord, Millis};

    /// Two genuinely interacting pairs (A,B) and (D,E) in alternating
    /// sessions, plus a loose follower C trailing the (A,B) sessions by
    /// ~2 s. Without a timeout the (B,C) concurrency bigrams create a
    /// false positive; a finite timeout prunes exactly those.
    fn synthetic_store(days: u32) -> (LogStore, PairModel) {
        let mut store = LogStore::new();
        let a = store.registry.source("A");
        let b = store.registry.source("B");
        let c = store.registry.source("C");
        let d = store.registry.source("D");
        let e = store.registry.source("E");
        let user = store.registry.user("u");
        for day in 0..days as i64 {
            for k in 0..30i64 {
                let host = store.registry.host(&format!("h{day}-{k}"));
                let t0 = day * MS_PER_DAY + k * 60_000;
                for r in 0..5i64 {
                    let t = t0 + r * 5_000;
                    if k % 2 == 0 {
                        store.push(
                            LogRecord::minimal(a, Millis(t))
                                .with_user(user)
                                .with_host(host),
                        );
                        store.push(
                            LogRecord::minimal(b, Millis(t + 100))
                                .with_user(user)
                                .with_host(host),
                        );
                        // C follows at 2 s — beyond a finite timeout.
                        store.push(
                            LogRecord::minimal(c, Millis(t + 2_100))
                                .with_user(user)
                                .with_host(host),
                        );
                    } else {
                        store.push(
                            LogRecord::minimal(d, Millis(t))
                                .with_user(user)
                                .with_host(host),
                        );
                        store.push(
                            LogRecord::minimal(e, Millis(t + 150))
                                .with_user(user)
                                .with_host(host),
                        );
                    }
                }
            }
        }
        store.finalize();
        let mut reference = PairModel::new();
        reference.insert(a, b);
        reference.insert(d, e);
        (store, reference)
    }

    #[test]
    fn study_produces_rows_and_sign_pattern() {
        let (store, reference) = synthetic_store(5);
        let study = timeout_study(
            &store,
            5,
            &[300, 1_000],
            &L2Config::default(),
            &reference,
            0.98,
        )
        .unwrap();
        assert_eq!(study.rows.len(), 2);
        assert_eq!(study.baseline.days.len(), 5);
        // With a timeout, the loose (B, C) pairing loses its bigrams:
        // fewer false positives, so the tpr difference is >= 0 and the
        // tp difference cannot be positive.
        for row in &study.rows {
            assert!(
                row.d_tpr_median >= 0.0,
                "timeout should not reduce precision here: {row:?}"
            );
            assert!(row.d_tp_median <= 0.0 || row.d_tp_median.abs() < 1e-9);
            assert!(row.wilcoxon_p_tpr <= 1.0 && row.wilcoxon_p_tpr > 0.0);
        }
    }

    #[test]
    fn five_days_same_sign_wilcoxon_p() {
        // All-positive differences over 5 days: exact p = 2/32.
        let d = [1.0, 2.0, 0.5, 3.0, 1.5];
        let r = signed_rank(&d, Alternative::TwoSided).unwrap();
        assert!((r.p_value - 0.0625).abs() < 1e-12);
    }
}
