//! The evaluation harness of §4 of the paper.
//!
//! * [`daily`] — per-day runs of each technique against a reference
//!   model, with cross-day order-statistics confidence intervals
//!   (Figures 5, 6, 8);
//! * [`timeout`] — the timeout-influence study (Figure 7, Table 2);
//! * [`load`] — the system-load study validating L1/L2 against L3 as a
//!   dynamic oracle (Figure 9).

pub mod daily;
pub mod load;
pub mod timeout;

pub use daily::{l1_daily, l2_daily, l3_daily, DailyOutcome, DailySeries};
pub use load::{load_experiment, HourPoint, LoadConfig, LoadExperiment};
pub use timeout::{timeout_study, TimeoutRow, TimeoutStudy};
