//! # logdep — log-based dependency model generation
//!
//! A complete implementation of the three log-mining techniques of
//! Steinle, Aberer, Girdzijauskas & Lovis, *"Mapping Moving Landscapes
//! by Mining Mountains of Logs: Novel Techniques for Dependency Model
//! Generation"* (VLDB 2006), together with the paper's evaluation
//! harness.
//!
//! Distributed systems fail through their interactions; root-cause
//! analysis needs a dependency model; in a moving landscape nobody can
//! maintain one by hand. The paper's answer — and this library's — is
//! to mine the centralized log stream, with three techniques trading
//! generality against precision:
//!
//! | Technique | Information used | Module |
//! |---|---|---|
//! | **L1** | source + timestamp only (logs as activity measure) | [`l1`] |
//! | **L2** | + user/machine context (co-occurrence in sessions) | [`l2`] |
//! | **L3** | + free text and the service directory (citations) | [`l3`] |
//!
//! All three produce a [`model::PairModel`] or [`model::AppServiceModel`]
//! that [`model::diff_pairs`] / [`model::diff_app_service`] compare
//! against a reference, and [`eval`] reproduces every experiment of the
//! paper's §4 (daily precision, the timeout study, the load study).
//!
//! Beyond the paper's published pipeline, the §5 improvement sketches
//! are implemented ([`l2::detect_directions`], [`l2::delay_profiles`],
//! [`l1::adaptive_slots`], [`l1::ReferenceProcess::LoadProportional`]),
//! and [`graph`] / [`evolution`] provide the downstream applications
//! the paper motivates the models with: impact prediction, root-cause
//! candidate ranking, availability criticality, and change tracking of
//! the moving landscape.
//!
//! ## Quick start
//!
//! ```
//! use logdep::l3::{run_l3, L3Config};
//! use logdep_logstore::{LogRecord, LogStore, Millis};
//! use logdep_logstore::time::TimeRange;
//!
//! // A two-line log "file": AppA invokes the DPINOTIFICATION group.
//! let mut store = LogStore::new();
//! let app = store.registry.source("AppA");
//! store.push(LogRecord::minimal(app, Millis(0))
//!     .with_text("(DPINOTIFICATION) notify( $params )"));
//! store.finalize();
//!
//! let ids = vec!["DPINOTIFICATION".to_owned()];
//! let res = run_l3(
//!     &store,
//!     TimeRange::new(Millis(0), Millis(1_000)),
//!     &ids,
//!     &L3Config::default(),
//! ).unwrap();
//! assert!(res.detected.contains(app, 0));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baselines;
pub mod cache;
pub mod durable;
pub mod ensemble;
pub mod error;
pub mod eval;
pub mod evolution;
pub mod graph;
pub mod health;
pub mod l1;
pub mod l2;
pub mod l3;
pub mod model;
pub mod window;

pub use cache::{run_l1_cached, run_l1_slots_cached, CacheStats, EvidenceCache, EvidenceKey};
pub use durable::{
    persist_atomic, plan_signature, repair_store, run_daily_durable, verify_store, DailyPlan,
    DailyReport, DurableError, DurableOp, DurableStore, NoopPolicy, RecoveryEvent, StoreReport,
    WriteDecision, WritePolicy,
};
pub use error::{MineError, Result};
pub use graph::DependencyGraph;
pub use health::{run_pipeline, DetectorHealth, DetectorKind, PipelineConfig, PipelineOutcome};
pub use model::{diff_app_service, diff_pairs, AppServiceModel, Diff, PairModel};
pub use window::{
    run_l2_windowed_cached, run_l3_windowed_cached, run_window_cached, WindowOutcome,
};

// Re-export the substrate crates under predictable names so downstream
// users need only one dependency.
pub use logdep_logstore as logstore;
pub use logdep_obs as obs;
pub use logdep_par as par;
pub use logdep_sessions as sessions;
pub use logdep_stats as stats;
pub use logdep_textmatch as textmatch;
