//! The citation-scanning runner of technique L3.

use crate::model::AppServiceModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogRecord, LogStore, SourceId};
use logdep_par::{par_chunks_fold, ParConfig};
use logdep_textmatch::{MatchMode, MatcherBuilder, StopPatterns};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of technique L3.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L3Config {
    /// Stop patterns (globs over the whole message). The paper's
    /// deployment used 10; pass an empty list for the no-stop-patterns
    /// ablation of §4.8.
    pub stop_patterns: Vec<String>,
    /// Require directory ids to match as whole words (`UPSRV` must not
    /// fire inside `UPSRV2`). On by default.
    pub whole_word: bool,
    /// Minimum number of citing logs before a dependency is declared.
    /// The paper's rule is "if and only if there are logs" — i.e. 1.
    pub min_citations: u64,
}

impl Default for L3Config {
    fn default() -> Self {
        Self {
            stop_patterns: Vec::new(),
            whole_word: true,
            min_citations: 1,
        }
    }
}

impl L3Config {
    /// Config with the given stop patterns.
    pub fn with_stop_patterns<S: AsRef<str>>(patterns: impl IntoIterator<Item = S>) -> Self {
        Self {
            stop_patterns: patterns
                .into_iter()
                .map(|p| p.as_ref().to_owned())
                .collect(),
            ..Self::default()
        }
    }
}

/// Result of an L3 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L3Result {
    /// Dependencies declared (service index = position in the id list
    /// passed to [`run_l3`]).
    pub detected: AppServiceModel,
    /// Citation counts per `(app, service index)`, including pairs
    /// below `min_citations`. Ordered so snapshots and serialization
    /// walk the counters in a stable key order.
    pub citations: BTreeMap<(SourceId, usize), u64>,
    /// Records skipped because a stop pattern matched.
    pub stopped_logs: usize,
    /// Records scanned (after stop filtering).
    pub scanned_logs: usize,
}

/// Per-shard scan accumulator: citation counters plus the stop/scan
/// tallies. Addition-only, so shards merge order-free.
#[derive(Default)]
struct ScanShard {
    citations: BTreeMap<(SourceId, usize), u64>,
    stopped: usize,
    scanned: usize,
}

impl ScanShard {
    fn merge(mut self, other: ScanShard) -> ScanShard {
        for (key, count) in other.citations {
            let slot = self.citations.entry(key).or_insert(0);
            *slot = slot.saturating_add(count);
        }
        self.stopped = self.stopped.saturating_add(other.stopped);
        self.scanned = self.scanned.saturating_add(other.scanned);
        self
    }
}

/// Runs technique L3 over the records in `range`, scanning for the
/// given directory ids. Thread count comes from [`ParConfig::default`]
/// (`LOGDEP_THREADS` or the hardware); results are bit-identical at
/// every thread count.
pub fn run_l3(
    store: &LogStore,
    range: TimeRange,
    service_ids: &[String],
    cfg: &L3Config,
) -> crate::Result<L3Result> {
    run_l3_pool(store, range, service_ids, cfg, &ParConfig::default())
}

/// [`run_l3`] with an explicit worker-pool configuration.
///
/// The Aho–Corasick automaton is built once and shared read-only; the
/// log lines fan out in contiguous chunks, each worker counting
/// citations into a private map, and the shard counters merge by
/// saturating addition — every line is scanned independently, so the
/// citation counts equal the serial scan at any thread count.
pub fn run_l3_pool(
    store: &LogStore,
    range: TimeRange,
    service_ids: &[String],
    cfg: &L3Config,
    par: &ParConfig,
) -> crate::Result<L3Result> {
    let mut builder = MatcherBuilder::new();
    builder.mode(if cfg.whole_word {
        MatchMode::WholeWord
    } else {
        MatchMode::Substring
    });
    builder.add_all(service_ids.iter().map(String::as_str));
    let matcher = builder.build();
    let stops = StopPatterns::new(&cfg.stop_patterns);

    let records = store.range(range);
    let scan = par_chunks_fold(
        par,
        records,
        ScanShard::default,
        |mut shard: ScanShard, rec: &LogRecord| {
            if !stops.is_empty() && stops.matches(&rec.text) {
                shard.stopped += 1;
                return shard;
            }
            shard.scanned += 1;
            for svc in matcher.matched_ids(&rec.text) {
                *shard.citations.entry((rec.source, svc)).or_insert(0) += 1;
            }
            shard
        },
        ScanShard::merge,
    );

    let mut detected = AppServiceModel::new();
    for (&(app, svc), &count) in &scan.citations {
        if count >= cfg.min_citations {
            detected.insert(app, svc);
        }
    }

    Ok(L3Result {
        detected,
        citations: scan.citations,
        stopped_logs: scan.stopped,
        scanned_logs: scan.scanned,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{LogRecord, Millis};

    fn ids(xs: &[&str]) -> Vec<String> {
        xs.iter().map(|s| s.to_string()).collect()
    }

    fn store_with_texts(rows: &[(&str, &str)]) -> LogStore {
        let mut store = LogStore::new();
        for (i, (src, text)) in rows.iter().enumerate() {
            let s = store.registry.source(src);
            store.push(LogRecord::minimal(s, Millis(i as i64 * 10)).with_text(*text));
        }
        store.finalize();
        store
    }

    fn whole() -> TimeRange {
        TimeRange::new(Millis(0), Millis(1_000_000))
    }

    #[test]
    fn detects_citation_dependencies() {
        let store = store_with_texts(&[
            (
                "AppA",
                "Invoke externalService [fct [notify] server [x:9999/dpinote]]",
            ),
            ("AppA", "(DPINOTE) notify( $p )"),
            ("AppB", "heartbeat ok"),
        ]);
        let res = run_l3(
            &store,
            whole(),
            &ids(&["DPINOTE", "OTHER"]),
            &L3Config::default(),
        )
        .unwrap();
        let a = store.registry.find_source("AppA").unwrap();
        assert!(res.detected.contains(a, 0));
        assert_eq!(res.detected.len(), 1);
        assert_eq!(res.citations[&(a, 0)], 2);
        assert_eq!(res.scanned_logs, 3);
        assert_eq!(res.stopped_logs, 0);
    }

    #[test]
    fn stop_patterns_suppress_server_side_logs() {
        let store = store_with_texts(&[
            ("Server", "Serving request [fct [q] group [SVC]] for AppA"),
            ("AppA", "calling SVC.q for record 1"),
        ]);
        let cfg = L3Config::with_stop_patterns(["serving request*"]);
        let res = run_l3(&store, whole(), &ids(&["SVC"]), &cfg).unwrap();
        let a = store.registry.find_source("AppA").unwrap();
        let srv = store.registry.find_source("Server").unwrap();
        assert!(res.detected.contains(a, 0));
        assert!(!res.detected.contains(srv, 0), "inverted dep not stopped");
        assert_eq!(res.stopped_logs, 1);

        // Without stop patterns the inverted dependency appears (§4.8).
        let res = run_l3(&store, whole(), &ids(&["SVC"]), &L3Config::default()).unwrap();
        assert!(res.detected.contains(srv, 0));
    }

    #[test]
    fn whole_word_prevents_renamed_id_hits() {
        let store = store_with_texts(&[("App", "calling UPSRV.update for record 2")]);
        // Directory only publishes the renamed id UPSRV2.
        let res = run_l3(&store, whole(), &ids(&["UPSRV2"]), &L3Config::default()).unwrap();
        assert!(
            res.detected.is_empty(),
            "UPSRV2 must not match inside UPSRV text"
        );

        // Substring mode (whole_word = false) would *also* not match here
        // (UPSRV2 is longer); but the reverse trap is covered:
        let store = store_with_texts(&[("App", "calling UPSRV2.update for record 2")]);
        let res = run_l3(&store, whole(), &ids(&["UPSRV"]), &L3Config::default()).unwrap();
        assert!(res.detected.is_empty(), "whole-word must reject prefix hit");
        let lax = L3Config {
            whole_word: false,
            ..L3Config::default()
        };
        let res = run_l3(&store, whole(), &ids(&["UPSRV"]), &lax).unwrap();
        assert_eq!(res.detected.len(), 1, "substring mode accepts prefix hit");
    }

    #[test]
    fn min_citations_threshold() {
        let store =
            store_with_texts(&[("App", "one SVC citation"), ("App", "another SVC citation")]);
        let strict = L3Config {
            min_citations: 3,
            ..L3Config::default()
        };
        let res = run_l3(&store, whole(), &ids(&["SVC"]), &strict).unwrap();
        assert!(res.detected.is_empty());
        let a = store.registry.find_source("App").unwrap();
        assert_eq!(res.citations[&(a, 0)], 2, "counts still recorded");
    }

    #[test]
    fn range_restricts_scan() {
        let store = store_with_texts(&[
            ("App", "SVC early"), // t = 0
            ("App", "SVC late"),  // t = 10
        ]);
        let res = run_l3(
            &store,
            TimeRange::new(Millis(5), Millis(100)),
            &ids(&["SVC"]),
            &L3Config::default(),
        )
        .unwrap();
        let a = store.registry.find_source("App").unwrap();
        assert_eq!(res.citations[&(a, 0)], 1);
        assert_eq!(res.scanned_logs, 1);
    }

    #[test]
    fn multiple_ids_in_one_log() {
        let store = store_with_texts(&[("App", "exception via GATEWAY calling (ARCHIVE)")]);
        let res = run_l3(
            &store,
            whole(),
            &ids(&["GATEWAY", "ARCHIVE"]),
            &L3Config::default(),
        )
        .unwrap();
        assert_eq!(res.detected.len(), 2);
    }

    #[test]
    fn empty_directory_detects_nothing() {
        let store = store_with_texts(&[("App", "anything at all")]);
        let res = run_l3(&store, whole(), &[], &L3Config::default()).unwrap();
        assert!(res.detected.is_empty());
        assert_eq!(res.scanned_logs, 1);
    }
}
