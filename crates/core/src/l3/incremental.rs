//! Incremental (streaming) variant of technique L3.
//!
//! The batch runner ([`run_l3`]) re-scans a range; a deployment that
//! tails the central log stream wants to *fold in* each batch as it
//! arrives and keep a live model — the "around the clock" operation
//! HUG needs (§1.2). Citation counts are monotone, so L3 is naturally
//! incremental: feed records in any order, query at any time.
//!
//! [`run_l3`]: super::run_l3

use super::algorithm::L3Config;
use crate::model::AppServiceModel;
use logdep_logstore::{LogRecord, SourceId};
use logdep_textmatch::{MatchMode, Matcher, MatcherBuilder, StopPatterns};
use std::collections::BTreeMap;

/// A live L3 miner: feed log records, read the current model.
#[derive(Debug)]
pub struct IncrementalL3 {
    matcher: Matcher,
    stops: StopPatterns,
    min_citations: u64,
    citations: BTreeMap<(SourceId, usize), u64>,
    scanned: usize,
    stopped: usize,
}

impl IncrementalL3 {
    /// Creates a miner for the given directory ids and configuration.
    pub fn new(service_ids: &[String], cfg: &L3Config) -> Self {
        let mut builder = MatcherBuilder::new();
        builder.mode(if cfg.whole_word {
            MatchMode::WholeWord
        } else {
            MatchMode::Substring
        });
        builder.add_all(service_ids.iter().map(String::as_str));
        Self {
            matcher: builder.build(),
            stops: StopPatterns::new(&cfg.stop_patterns),
            min_citations: cfg.min_citations,
            citations: BTreeMap::new(),
            scanned: 0,
            stopped: 0,
        }
    }

    /// Folds one record into the model. Returns the newly-crossed
    /// dependencies, i.e. `(app, service)` pairs whose citation count
    /// reached the threshold *with this record* — the live feed a
    /// monitoring UI would subscribe to.
    pub fn observe(&mut self, record: &LogRecord) -> Vec<(SourceId, usize)> {
        if !self.stops.is_empty() && self.stops.matches(&record.text) {
            self.stopped += 1;
            return Vec::new();
        }
        self.scanned += 1;
        let mut crossed = Vec::new();
        for svc in self.matcher.matched_ids(&record.text) {
            let count = self.citations.entry((record.source, svc)).or_insert(0);
            *count += 1;
            if *count == self.min_citations {
                crossed.push((record.source, svc));
            }
        }
        crossed
    }

    /// Folds a batch of records; returns all newly-crossed dependencies.
    pub fn observe_batch<'a>(
        &mut self,
        records: impl IntoIterator<Item = &'a LogRecord>,
    ) -> Vec<(SourceId, usize)> {
        records.into_iter().flat_map(|r| self.observe(r)).collect()
    }

    /// The current dependency model.
    pub fn model(&self) -> AppServiceModel {
        self.citations
            .iter()
            .filter(|(_, &c)| c >= self.min_citations)
            .map(|(&k, _)| k)
            .collect()
    }

    /// All citation counts in deterministic key order — the exportable
    /// form the windowed cache persists per day chunk (counts are
    /// monotone and additive, so cached chunks merge exactly).
    pub fn citation_counts(&self) -> BTreeMap<(SourceId, usize), u64> {
        self.citations.clone()
    }

    /// Citation count for a specific pair.
    pub fn citation_count(&self, app: SourceId, service_idx: usize) -> u64 {
        self.citations
            .get(&(app, service_idx))
            .copied()
            .unwrap_or(0)
    }

    /// Records scanned (after stop filtering) and stopped, respectively.
    pub fn stats(&self) -> (usize, usize) {
        (self.scanned, self.stopped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::l3::run_l3;
    use logdep_logstore::time::TimeRange;
    use logdep_logstore::Millis;

    fn ids() -> Vec<String> {
        vec!["ALPHA".to_owned(), "BETA".to_owned()]
    }

    fn record(src: u32, t: i64, text: &str) -> LogRecord {
        LogRecord::minimal(SourceId(src), Millis(t)).with_text(text)
    }

    #[test]
    fn crossing_events_fire_exactly_once() {
        let cfg = L3Config {
            min_citations: 2,
            ..L3Config::default()
        };
        let mut inc = IncrementalL3::new(&ids(), &cfg);
        assert!(inc.observe(&record(0, 0, "calling ALPHA now")).is_empty());
        let crossed = inc.observe(&record(0, 1, "ALPHA again"));
        assert_eq!(crossed, vec![(SourceId(0), 0)]);
        // Further citations do not re-fire.
        assert!(inc.observe(&record(0, 2, "ALPHA thrice")).is_empty());
        assert_eq!(inc.citation_count(SourceId(0), 0), 3);
        assert!(inc.model().contains(SourceId(0), 0));
    }

    #[test]
    fn stop_patterns_apply_incrementally() {
        let cfg = L3Config::with_stop_patterns(["serving*"]);
        let mut inc = IncrementalL3::new(&ids(), &cfg);
        assert!(inc
            .observe(&record(1, 0, "serving ALPHA request"))
            .is_empty());
        assert_eq!(inc.stats(), (0, 1));
        assert!(!inc.model().contains(SourceId(1), 0));
    }

    #[test]
    fn agrees_with_batch_runner_on_a_simulated_day() {
        let out = logdep_sim::simulate(&logdep_sim::SimConfig::small_test(21));
        let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
        let cfg = L3Config::with_stop_patterns(logdep_sim::textgen::standard_stop_patterns());
        let range = TimeRange::new(Millis(0), Millis::from_days(2));
        let batch = run_l3(&out.store, range, &ids, &cfg).expect("batch L3");

        let mut inc = IncrementalL3::new(&ids, &cfg);
        // Feed in two arbitrary chunks.
        let records = out.store.range(range);
        let mid = records.len() / 2;
        inc.observe_batch(&records[..mid]);
        inc.observe_batch(&records[mid..]);

        assert_eq!(inc.model(), batch.detected);
        let (scanned, stopped) = inc.stats();
        assert_eq!(scanned, batch.scanned_logs);
        assert_eq!(stopped, batch.stopped_logs);
    }

    #[test]
    fn order_independence() {
        let cfg = L3Config::default();
        let recs: Vec<LogRecord> = (0..20)
            .map(|i| {
                record(
                    i % 3,
                    i as i64,
                    if i % 2 == 0 { "hit ALPHA" } else { "hit BETA" },
                )
            })
            .collect();
        let mut fwd = IncrementalL3::new(&ids(), &cfg);
        fwd.observe_batch(recs.iter());
        let mut rev = IncrementalL3::new(&ids(), &cfg);
        rev.observe_batch(recs.iter().rev());
        assert_eq!(fwd.model(), rev.model());
    }
}
