//! Technique L3: analyzing free text against the service directory.
//!
//! §3.3 of the paper. Invocations are almost always logged, and however
//! idiosyncratic the format, "it is extremely likely that some element
//! provided by the directory system is mentioned in the log entry". So
//! instead of parsing invocation logs, L3 scans every message for
//! citations of service-directory identifiers and declares: application
//! `A` depends on service group `S` iff some (non-stopped) log of `A`
//! cites `S`. **Stop patterns** suppress server-side logs that would
//! otherwise invert the dependency direction.

mod algorithm;
mod incremental;

pub use algorithm::{run_l3, run_l3_pool, L3Config, L3Result};
pub use incremental::IncrementalL3;
