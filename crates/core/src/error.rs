//! Error type for the mining pipeline.

use logdep_stats::StatsError;
use std::fmt;

/// Errors surfaced by the mining techniques and the evaluation harness.
#[derive(Debug, Clone, PartialEq)]
pub enum MineError {
    /// A statistical routine failed (degenerate input, bad level, ...).
    Stats(StatsError),
    /// A configuration value was invalid.
    InvalidConfig {
        /// Parameter name.
        name: &'static str,
        /// Human-readable complaint.
        reason: String,
    },
    /// A name could not be resolved against the log store's registry.
    UnknownName(String),
    /// The experiment had no data to work on (empty range, no sessions).
    NoData(&'static str),
}

impl fmt::Display for MineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MineError::Stats(e) => write!(f, "statistics error: {e}"),
            MineError::InvalidConfig { name, reason } => {
                write!(f, "invalid config {name}: {reason}")
            }
            MineError::UnknownName(n) => write!(f, "unknown name: {n:?}"),
            MineError::NoData(what) => write!(f, "no data for {what}"),
        }
    }
}

impl std::error::Error for MineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MineError::Stats(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StatsError> for MineError {
    fn from(e: StatsError) -> Self {
        MineError::Stats(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, MineError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = MineError::from(StatsError::EmptySample);
        assert!(e.to_string().contains("empty sample"));
        assert!(std::error::Error::source(&e).is_some());

        let e = MineError::UnknownName("AppX".into());
        assert!(e.to_string().contains("AppX"));
        assert!(std::error::Error::source(&e).is_none());

        let e = MineError::InvalidConfig {
            name: "th_pr",
            reason: "must lie in (0,1]".into(),
        };
        assert!(e.to_string().contains("th_pr"));
        assert!(MineError::NoData("sessions")
            .to_string()
            .contains("sessions"));
    }
}
