//! Graceful degradation: run the detectors in isolation, report health.
//!
//! On a hostile stream (see the `logdep-faults` injector) a single
//! detector can fail — L2's session reconstruction starved of user
//! context, L3 handed an empty directory, a config invalidated by
//! upstream scaling. The paper's deployment ran continuously against a
//! moving landscape; an operator tool that aborts the whole mining run
//! because one of three independent evidence sources failed is useless
//! there. [`run_pipeline`] therefore isolates each detector, converts
//! its failure into a [`DetectorHealth`] entry, and hands whatever
//! subset succeeded to [`Ensemble::combine_partial`], whose vote
//! thresholds rescale to the surviving detectors.

use crate::ensemble::{app_service_to_pairs, Ensemble};
use crate::l1::{run_l1, L1Config};
use crate::l2::{run_l2, L2Config};
use crate::l3::{run_l3, L3Config};
use crate::model::{AppServiceModel, PairModel};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use serde::{Deserialize, Serialize};

/// The three mining techniques, as health-report subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Technique L1: activity correlation.
    L1,
    /// Technique L2: session co-occurrence.
    L2,
    /// Technique L3: directory citations.
    L3,
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::L1 => write!(f, "L1"),
            DetectorKind::L2 => write!(f, "L2"),
            DetectorKind::L3 => write!(f, "L3"),
        }
    }
}

/// Outcome of one detector in a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorHealth {
    /// Which detector this entry describes.
    pub detector: DetectorKind,
    /// Whether it ran to completion.
    pub ok: bool,
    /// The error message when it did not (`None` when `ok`, and also
    /// when the detector was disabled by configuration).
    pub error: Option<String>,
    /// Whether the detector was enabled at all.
    pub enabled: bool,
    /// Number of dependencies it detected (0 when it failed).
    pub detected: usize,
}

impl DetectorHealth {
    fn ran(detector: DetectorKind, detected: usize) -> Self {
        Self {
            detector,
            ok: true,
            error: None,
            enabled: true,
            detected,
        }
    }

    fn failed(detector: DetectorKind, error: String) -> Self {
        Self {
            detector,
            ok: false,
            error: Some(error),
            enabled: true,
            detected: 0,
        }
    }

    fn disabled(detector: DetectorKind) -> Self {
        Self {
            detector,
            ok: false,
            error: None,
            enabled: false,
            detected: 0,
        }
    }
}

/// Which detectors to run, with their configurations. `None` disables
/// a detector (e.g. no service directory available → no L3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineConfig {
    /// L1 configuration, or `None` to skip L1.
    pub l1: Option<L1Config>,
    /// L2 configuration, or `None` to skip L2.
    pub l2: Option<L2Config>,
    /// L3 configuration, or `None` to skip L3.
    pub l3: Option<L3Config>,
}

impl PipelineConfig {
    /// All three detectors with their default configurations.
    pub fn all_defaults() -> Self {
        Self {
            l1: Some(L1Config::default()),
            l2: Some(L2Config::default()),
            l3: Some(L3Config::default()),
        }
    }
}

/// Everything a degraded-tolerant pipeline run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineOutcome {
    /// L1's detected pairs (`None` when L1 failed or was disabled).
    pub l1_pairs: Option<PairModel>,
    /// L2's detected pairs.
    pub l2_pairs: Option<PairModel>,
    /// L3's detected app→service dependencies.
    pub l3_deps: Option<AppServiceModel>,
    /// L3's dependencies mapped onto app pairs via the owner relation
    /// (`None` when L3 failed/was disabled *or* no owners were given).
    pub l3_pairs: Option<PairModel>,
    /// One entry per detector, in L1, L2, L3 order.
    pub health: Vec<DetectorHealth>,
    /// The partial-set ensemble over whatever succeeded.
    pub ensemble: Ensemble,
}

impl PipelineOutcome {
    /// Number of detectors that ran to completion.
    pub fn detectors_ok(&self) -> usize {
        self.health.iter().filter(|h| h.ok).count()
    }

    /// True when every *enabled* detector ran to completion.
    pub fn fully_healthy(&self) -> bool {
        self.health.iter().all(|h| h.ok || !h.enabled)
    }
}

/// Runs L1/L2/L3 in isolation over `range`, never failing as a whole:
/// a detector erroring yields a [`DetectorHealth`] entry with `ok:
/// false` while the others proceed, and the returned
/// [`Ensemble`] combines the partial detector set (vote thresholds
/// rescale via [`Ensemble::at_least_rescaled`]).
///
/// `owners` maps service index → owning application (as in
/// [`app_service_to_pairs`]); without it L3 still runs but cannot vote
/// on app pairs.
pub fn run_pipeline(
    store: &LogStore,
    range: TimeRange,
    service_ids: &[String],
    owners: Option<&[SourceId]>,
    cfg: &PipelineConfig,
) -> PipelineOutcome {
    let mut out = PipelineOutcome::default();

    match &cfg.l1 {
        Some(l1_cfg) => {
            let sources = store.active_sources();
            match run_l1(store, range, &sources, l1_cfg) {
                Ok(res) => {
                    out.health
                        .push(DetectorHealth::ran(DetectorKind::L1, res.detected.len()));
                    out.l1_pairs = Some(res.detected);
                }
                Err(e) => out
                    .health
                    .push(DetectorHealth::failed(DetectorKind::L1, e.to_string())),
            }
        }
        None => out.health.push(DetectorHealth::disabled(DetectorKind::L1)),
    }

    match &cfg.l2 {
        Some(l2_cfg) => match run_l2(store, range, l2_cfg) {
            Ok(res) => {
                out.health
                    .push(DetectorHealth::ran(DetectorKind::L2, res.detected.len()));
                out.l2_pairs = Some(res.detected);
            }
            Err(e) => out
                .health
                .push(DetectorHealth::failed(DetectorKind::L2, e.to_string())),
        },
        None => out.health.push(DetectorHealth::disabled(DetectorKind::L2)),
    }

    match &cfg.l3 {
        Some(l3_cfg) => match run_l3(store, range, service_ids, l3_cfg) {
            Ok(res) => {
                out.health
                    .push(DetectorHealth::ran(DetectorKind::L3, res.detected.len()));
                out.l3_pairs = owners.map(|o| app_service_to_pairs(&res.detected, o));
                out.l3_deps = Some(res.detected);
            }
            Err(e) => out
                .health
                .push(DetectorHealth::failed(DetectorKind::L3, e.to_string())),
        },
        None => out.health.push(DetectorHealth::disabled(DetectorKind::L3)),
    }

    out.ensemble = Ensemble::combine_partial(
        out.l1_pairs.as_ref(),
        out.l2_pairs.as_ref(),
        out.l3_pairs.as_ref(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{LogRecord, Millis};

    /// A store where AppA cites service SVCB (owned by AppB) and both
    /// log densely enough for L1/L2 to have something to chew on.
    fn fixture() -> (LogStore, Vec<String>, Vec<SourceId>) {
        let mut store = LogStore::new();
        let a = store.registry.source("AppA");
        let b = store.registry.source("AppB");
        let user = store.registry.user("alice");
        for i in 0..200i64 {
            let t = i * 1_000;
            store.push(
                LogRecord::minimal(a, Millis(t))
                    .with_user(user)
                    .with_text("Invoke SVCB [fct [query]]"),
            );
            store.push(
                LogRecord::minimal(b, Millis(t + 120))
                    .with_user(user)
                    .with_text("handling request"),
            );
        }
        store.finalize();
        (store, vec!["SVCB".to_owned()], vec![b])
    }

    fn full_range() -> TimeRange {
        TimeRange::new(Millis(0), Millis(300_000))
    }

    #[test]
    fn healthy_run_reports_all_ok() {
        let (store, ids, owners) = fixture();
        let out = run_pipeline(
            &store,
            full_range(),
            &ids,
            Some(&owners),
            &PipelineConfig::all_defaults(),
        );
        assert_eq!(out.health.len(), 3);
        assert!(out.fully_healthy(), "health: {:?}", out.health);
        assert_eq!(out.detectors_ok(), 3);
        assert_eq!(out.ensemble.n_available(), 3);
        // L3 must see the citation.
        let l3 = out.l3_deps.as_ref().expect("l3 ran");
        assert!(l3.len() >= 1);
        let l3p = out.l3_pairs.as_ref().expect("owners given");
        assert!(l3p.len() >= 1);
    }

    #[test]
    fn one_failing_detector_degrades_not_aborts() {
        let (store, ids, owners) = fixture();
        let mut cfg = PipelineConfig::all_defaults();
        // Invalid L1 config: negative slot width fails validation.
        if let Some(l1) = cfg.l1.as_mut() {
            l1.slot_ms = -5;
        }
        let out = run_pipeline(&store, full_range(), &ids, Some(&owners), &cfg);
        assert!(!out.fully_healthy());
        assert_eq!(out.detectors_ok(), 2);
        let l1_health = &out.health[0];
        assert_eq!(l1_health.detector, DetectorKind::L1);
        assert!(!l1_health.ok && l1_health.enabled);
        assert!(l1_health.error.as_deref().is_some_and(|e| !e.is_empty()));
        // The others still delivered and the ensemble adapts.
        assert!(out.l1_pairs.is_none());
        assert!(out.l2_pairs.is_some());
        assert!(out.l3_deps.is_some());
        assert_eq!(out.ensemble.n_available(), 2);
        assert_eq!(out.ensemble.available(), [false, true, true]);
    }

    #[test]
    fn disabled_detector_is_not_a_failure() {
        let (store, ids, _) = fixture();
        let cfg = PipelineConfig {
            l3: None,
            ..PipelineConfig::all_defaults()
        };
        let out = run_pipeline(&store, full_range(), &ids, None, &cfg);
        assert!(out.fully_healthy(), "disabled L3 is not a failure");
        assert_eq!(out.detectors_ok(), 2);
        let l3_health = &out.health[2];
        assert!(!l3_health.enabled && l3_health.error.is_none());
        assert!(out.l3_deps.is_none() && out.l3_pairs.is_none());
    }

    #[test]
    fn l3_without_owners_runs_but_does_not_vote() {
        let (store, ids, _) = fixture();
        let out = run_pipeline(
            &store,
            full_range(),
            &ids,
            None,
            &PipelineConfig::all_defaults(),
        );
        assert!(out.l3_deps.is_some(), "L3 ran");
        assert!(out.l3_pairs.is_none(), "no owner relation, no vote");
        assert_eq!(out.ensemble.available()[2], false);
    }

    #[test]
    fn empty_store_never_panics() {
        let mut store = LogStore::new();
        store.finalize();
        let out = run_pipeline(
            &store,
            TimeRange::new(Millis(0), Millis(1_000)),
            &[],
            None,
            &PipelineConfig::all_defaults(),
        );
        assert_eq!(out.health.len(), 3);
        // Whatever failed did so gracefully.
        for h in &out.health {
            assert!(h.ok || h.error.is_some() || !h.enabled, "{h:?}");
        }
    }
}
