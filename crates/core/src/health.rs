//! Graceful degradation: run the detectors in isolation, report health.
//!
//! On a hostile stream (see the `logdep-faults` injector) a single
//! detector can fail — L2's session reconstruction starved of user
//! context, L3 handed an empty directory, a config invalidated by
//! upstream scaling. The paper's deployment ran continuously against a
//! moving landscape; an operator tool that aborts the whole mining run
//! because one of three independent evidence sources failed is useless
//! there. [`run_pipeline`] therefore isolates each detector, converts
//! its failure into a [`DetectorHealth`] entry, and hands whatever
//! subset succeeded to [`Ensemble::combine_partial`], whose vote
//! thresholds rescale to the surviving detectors.

use crate::ensemble::{app_service_to_pairs, Ensemble};
use crate::l1::{run_l1_pool, L1Config};
use crate::l2::{run_l2_pool, L2Config};
use crate::l3::{run_l3_pool, L3Config};
use crate::model::{AppServiceModel, PairModel};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_obs::{record, Field};
use logdep_par::ParConfig;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// The three mining techniques, as health-report subjects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DetectorKind {
    /// Technique L1: activity correlation.
    L1,
    /// Technique L2: session co-occurrence.
    L2,
    /// Technique L3: directory citations.
    L3,
    /// The durable evidence store (recovery/corruption standing of the
    /// persisted cache, reported by the crash-safe `daily` driver).
    Store,
}

impl DetectorKind {
    /// Lowercase metric/event name segment (`detector.<slug>.…`).
    pub fn slug(self) -> &'static str {
        match self {
            DetectorKind::L1 => "l1",
            DetectorKind::L2 => "l2",
            DetectorKind::L3 => "l3",
            DetectorKind::Store => "store",
        }
    }
}

impl std::fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DetectorKind::L1 => write!(f, "L1"),
            DetectorKind::L2 => write!(f, "L2"),
            DetectorKind::L3 => write!(f, "L3"),
            DetectorKind::Store => write!(f, "Store"),
        }
    }
}

/// Outcome of one detector in a pipeline run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorHealth {
    /// Which detector this entry describes.
    pub detector: DetectorKind,
    /// Whether it ran to completion.
    pub ok: bool,
    /// The error message when it did not (`None` when `ok`, and also
    /// when the detector was disabled by configuration).
    pub error: Option<String>,
    /// Whether the detector was enabled at all.
    pub enabled: bool,
    /// Number of dependencies it detected (0 when it failed).
    pub detected: usize,
    /// Wall-clock time the detector spent, in microseconds (0 when
    /// disabled). Observational only — it is *not* part of the
    /// scientific output, and the differential harness excludes it
    /// when asserting parallel ≡ serial.
    pub elapsed_us: u64,
}

impl DetectorHealth {
    fn ran(detector: DetectorKind, detected: usize, elapsed_us: u64) -> Self {
        Self {
            detector,
            ok: true,
            error: None,
            enabled: true,
            detected,
            elapsed_us,
        }
    }

    fn failed(detector: DetectorKind, error: String, elapsed_us: u64) -> Self {
        Self {
            detector,
            ok: false,
            error: Some(error),
            enabled: true,
            detected: 0,
            elapsed_us,
        }
    }

    fn disabled(detector: DetectorKind) -> Self {
        Self {
            detector,
            ok: false,
            error: None,
            enabled: false,
            detected: 0,
            elapsed_us: 0,
        }
    }
}

/// Which detectors to run, with their configurations. `None` disables
/// a detector (e.g. no service directory available → no L3).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineConfig {
    /// L1 configuration, or `None` to skip L1.
    pub l1: Option<L1Config>,
    /// L2 configuration, or `None` to skip L2.
    pub l2: Option<L2Config>,
    /// L3 configuration, or `None` to skip L3.
    pub l3: Option<L3Config>,
    /// Worker-pool configuration shared by all three detectors. The
    /// default reads `LOGDEP_THREADS` (falling back to the hardware);
    /// [`ParConfig::serial`] forces the plain sequential path.
    pub par: ParConfig,
}

impl PipelineConfig {
    /// All three detectors with their default configurations.
    pub fn all_defaults() -> Self {
        Self {
            l1: Some(L1Config::default()),
            l2: Some(L2Config::default()),
            l3: Some(L3Config::default()),
            par: ParConfig::default(),
        }
    }

    /// `all_defaults` with an explicit pool configuration.
    pub fn all_defaults_with_par(par: ParConfig) -> Self {
        Self {
            par,
            ..Self::all_defaults()
        }
    }
}

/// Everything a degraded-tolerant pipeline run produced.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PipelineOutcome {
    /// L1's detected pairs (`None` when L1 failed or was disabled).
    pub l1_pairs: Option<PairModel>,
    /// L2's detected pairs.
    pub l2_pairs: Option<PairModel>,
    /// L3's detected app→service dependencies.
    pub l3_deps: Option<AppServiceModel>,
    /// L3's dependencies mapped onto app pairs via the owner relation
    /// (`None` when L3 failed/was disabled *or* no owners were given).
    pub l3_pairs: Option<PairModel>,
    /// One entry per detector, in L1, L2, L3 order.
    pub health: Vec<DetectorHealth>,
    /// The partial-set ensemble over whatever succeeded.
    pub ensemble: Ensemble,
}

impl PipelineOutcome {
    /// Number of detectors that ran to completion.
    pub fn detectors_ok(&self) -> usize {
        self.health.iter().filter(|h| h.ok).count()
    }

    /// True when every *enabled* detector ran to completion.
    pub fn fully_healthy(&self) -> bool {
        self.health.iter().all(|h| h.ok || !h.enabled)
    }
}

fn l1_step(
    store: &LogStore,
    range: TimeRange,
    cfg: Option<&L1Config>,
    par: &ParConfig,
) -> (DetectorHealth, Option<PairModel>) {
    let Some(l1_cfg) = cfg else {
        return (DetectorHealth::disabled(DetectorKind::L1), None);
    };
    let start = Instant::now();
    let sources = store.active_sources();
    let outcome = run_l1_pool(store, range, &sources, l1_cfg, par);
    let us = elapsed_us(start);
    match outcome {
        Ok(res) => (
            DetectorHealth::ran(DetectorKind::L1, res.detected.len(), us),
            Some(res.detected),
        ),
        Err(e) => (
            DetectorHealth::failed(DetectorKind::L1, e.to_string(), us),
            None,
        ),
    }
}

fn l2_step(
    store: &LogStore,
    range: TimeRange,
    cfg: Option<&L2Config>,
    par: &ParConfig,
) -> (DetectorHealth, Option<PairModel>) {
    let Some(l2_cfg) = cfg else {
        return (DetectorHealth::disabled(DetectorKind::L2), None);
    };
    let start = Instant::now();
    let outcome = run_l2_pool(store, range, l2_cfg, par);
    let us = elapsed_us(start);
    match outcome {
        Ok(res) => (
            DetectorHealth::ran(DetectorKind::L2, res.detected.len(), us),
            Some(res.detected),
        ),
        Err(e) => (
            DetectorHealth::failed(DetectorKind::L2, e.to_string(), us),
            None,
        ),
    }
}

fn l3_step(
    store: &LogStore,
    range: TimeRange,
    service_ids: &[String],
    cfg: Option<&L3Config>,
    par: &ParConfig,
) -> (DetectorHealth, Option<AppServiceModel>) {
    let Some(l3_cfg) = cfg else {
        return (DetectorHealth::disabled(DetectorKind::L3), None);
    };
    let start = Instant::now();
    let outcome = run_l3_pool(store, range, service_ids, l3_cfg, par);
    let us = elapsed_us(start);
    match outcome {
        Ok(res) => (
            DetectorHealth::ran(DetectorKind::L3, res.detected.len(), us),
            Some(res.detected),
        ),
        Err(e) => (
            DetectorHealth::failed(DetectorKind::L3, e.to_string(), us),
            None,
        ),
    }
}

fn elapsed_us(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Emits one detector's trace span and metrics from its health row.
///
/// Always called from the orchestration thread *after* the detector
/// finished (never from pool workers), so the event stream is
/// identical at every thread width; the wall-clock `elapsed_us` goes
/// only into the metrics histogram, never into the trace.
pub(crate) fn record_detector_health(h: &DetectorHealth) {
    record(|r| {
        let slug = h.detector.slug();
        let name = format!("detector.{slug}");
        r.span_begin(&name, &[("enabled", Field::from(h.enabled))]);
        r.span_end(
            &name,
            &[
                ("ok", Field::from(h.ok)),
                ("detected", Field::from(h.detected)),
            ],
        );
        r.gauge_set(&format!("detector.{slug}.enabled"), i64::from(h.enabled));
        r.gauge_set(&format!("detector.{slug}.ok"), i64::from(h.ok));
        r.counter_add(&format!("detector.{slug}.detected"), h.detected as u64);
        r.observe_us(&format!("detector.{slug}.us"), h.elapsed_us);
    });
}

/// Runs L1/L2/L3 in isolation over `range`, never failing as a whole:
/// a detector erroring yields a [`DetectorHealth`] entry with `ok:
/// false` while the others proceed, and the returned
/// [`Ensemble`] combines the partial detector set (vote thresholds
/// rescale via [`Ensemble::at_least_rescaled`]).
///
/// With `cfg.par` above one thread the three detectors also run
/// *concurrently* on a [`logdep_par::scope`] (L1 and L2 on pool
/// workers, L3 on the calling thread), each internally sharding on the
/// same pool configuration. `threads = 1` is the plain sequential
/// loop; either way the outputs are bit-identical, only
/// [`DetectorHealth::elapsed_us`] varies.
///
/// `owners` maps service index → owning application (as in
/// [`app_service_to_pairs`]); without it L3 still runs but cannot vote
/// on app pairs.
pub fn run_pipeline(
    store: &LogStore,
    range: TimeRange,
    service_ids: &[String],
    owners: Option<&[SourceId]>,
    cfg: &PipelineConfig,
) -> PipelineOutcome {
    let par = &cfg.par;
    record(|r| {
        r.span_begin(
            "pipeline",
            &[
                ("start_ms", Field::from(range.start.0)),
                ("end_ms", Field::from(range.end.0)),
            ],
        );
    });
    let ((h1, l1_pairs), (h2, l2_pairs), (h3, l3_deps)) = if par.is_serial() {
        (
            l1_step(store, range, cfg.l1.as_ref(), par),
            l2_step(store, range, cfg.l2.as_ref(), par),
            l3_step(store, range, service_ids, cfg.l3.as_ref(), par),
        )
    } else {
        logdep_par::scope(|s| {
            let t1 = s.spawn(|| l1_step(store, range, cfg.l1.as_ref(), par));
            let t2 = s.spawn(|| l2_step(store, range, cfg.l2.as_ref(), par));
            let r3 = l3_step(store, range, service_ids, cfg.l3.as_ref(), par);
            let r1 = match t1.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            let r2 = match t2.join() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            };
            (r1, r2, r3)
        })
    };

    // Detector spans are emitted here — after both branches converge,
    // in fixed L1/L2/L3 order, from the caller thread — so the trace
    // is byte-identical whether the steps ran serial or concurrent.
    record_detector_health(&h1);
    record_detector_health(&h2);
    record_detector_health(&h3);
    let ok_count = [&h1, &h2, &h3].iter().filter(|h| h.ok).count();
    record(|r| {
        r.span_end("pipeline", &[("detectors_ok", Field::from(ok_count))]);
    });

    let mut out = PipelineOutcome {
        l1_pairs,
        l2_pairs,
        l3_pairs: match (&l3_deps, owners) {
            (Some(deps), Some(o)) => Some(app_service_to_pairs(deps, o)),
            _ => None,
        },
        l3_deps,
        health: vec![h1, h2, h3],
        ..PipelineOutcome::default()
    };
    out.ensemble = Ensemble::combine_partial(
        out.l1_pairs.as_ref(),
        out.l2_pairs.as_ref(),
        out.l3_pairs.as_ref(),
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{LogRecord, Millis};

    /// A store where AppA cites service SVCB (owned by AppB) and both
    /// log densely enough for L1/L2 to have something to chew on.
    fn fixture() -> (LogStore, Vec<String>, Vec<SourceId>) {
        let mut store = LogStore::new();
        let a = store.registry.source("AppA");
        let b = store.registry.source("AppB");
        let user = store.registry.user("alice");
        for i in 0..200i64 {
            let t = i * 1_000;
            store.push(
                LogRecord::minimal(a, Millis(t))
                    .with_user(user)
                    .with_text("Invoke SVCB [fct [query]]"),
            );
            store.push(
                LogRecord::minimal(b, Millis(t + 120))
                    .with_user(user)
                    .with_text("handling request"),
            );
        }
        store.finalize();
        (store, vec!["SVCB".to_owned()], vec![b])
    }

    fn full_range() -> TimeRange {
        TimeRange::new(Millis(0), Millis(300_000))
    }

    #[test]
    fn healthy_run_reports_all_ok() {
        let (store, ids, owners) = fixture();
        let out = run_pipeline(
            &store,
            full_range(),
            &ids,
            Some(&owners),
            &PipelineConfig::all_defaults(),
        );
        assert_eq!(out.health.len(), 3);
        assert!(out.fully_healthy(), "health: {:?}", out.health);
        assert_eq!(out.detectors_ok(), 3);
        assert_eq!(out.ensemble.n_available(), 3);
        // L3 must see the citation.
        let l3 = out.l3_deps.as_ref().expect("l3 ran");
        assert!(l3.len() >= 1);
        let l3p = out.l3_pairs.as_ref().expect("owners given");
        assert!(l3p.len() >= 1);
    }

    #[test]
    fn one_failing_detector_degrades_not_aborts() {
        let (store, ids, owners) = fixture();
        let mut cfg = PipelineConfig::all_defaults();
        // Invalid L1 config: negative slot width fails validation.
        if let Some(l1) = cfg.l1.as_mut() {
            l1.slot_ms = -5;
        }
        let out = run_pipeline(&store, full_range(), &ids, Some(&owners), &cfg);
        assert!(!out.fully_healthy());
        assert_eq!(out.detectors_ok(), 2);
        let l1_health = &out.health[0];
        assert_eq!(l1_health.detector, DetectorKind::L1);
        assert!(!l1_health.ok && l1_health.enabled);
        assert!(l1_health.error.as_deref().is_some_and(|e| !e.is_empty()));
        // The others still delivered and the ensemble adapts.
        assert!(out.l1_pairs.is_none());
        assert!(out.l2_pairs.is_some());
        assert!(out.l3_deps.is_some());
        assert_eq!(out.ensemble.n_available(), 2);
        assert_eq!(out.ensemble.available(), [false, true, true]);
    }

    #[test]
    fn disabled_detector_is_not_a_failure() {
        let (store, ids, _) = fixture();
        let cfg = PipelineConfig {
            l3: None,
            ..PipelineConfig::all_defaults()
        };
        let out = run_pipeline(&store, full_range(), &ids, None, &cfg);
        assert!(out.fully_healthy(), "disabled L3 is not a failure");
        assert_eq!(out.detectors_ok(), 2);
        let l3_health = &out.health[2];
        assert!(!l3_health.enabled && l3_health.error.is_none());
        assert!(out.l3_deps.is_none() && out.l3_pairs.is_none());
    }

    #[test]
    fn l3_without_owners_runs_but_does_not_vote() {
        let (store, ids, _) = fixture();
        let out = run_pipeline(
            &store,
            full_range(),
            &ids,
            None,
            &PipelineConfig::all_defaults(),
        );
        assert!(out.l3_deps.is_some(), "L3 ran");
        assert!(out.l3_pairs.is_none(), "no owner relation, no vote");
        assert_eq!(out.ensemble.available()[2], false);
    }

    #[test]
    fn concurrent_pipeline_matches_serial_and_times_detectors() {
        let (store, ids, owners) = fixture();
        let serial = run_pipeline(
            &store,
            full_range(),
            &ids,
            Some(&owners),
            &PipelineConfig::all_defaults_with_par(ParConfig::serial()),
        );
        let par4 = ParConfig::with_threads(4).expect("4 >= 1");
        let parallel = run_pipeline(
            &store,
            full_range(),
            &ids,
            Some(&owners),
            &PipelineConfig::all_defaults_with_par(par4),
        );
        assert_eq!(serial.l1_pairs, parallel.l1_pairs);
        assert_eq!(serial.l2_pairs, parallel.l2_pairs);
        assert_eq!(serial.l3_deps, parallel.l3_deps);
        assert_eq!(serial.l3_pairs, parallel.l3_pairs);
        assert_eq!(serial.ensemble, parallel.ensemble);
        // Health agrees on everything but the wall-clock field.
        for (a, b) in serial.health.iter().zip(parallel.health.iter()) {
            assert_eq!(a.detector, b.detector);
            assert_eq!(a.ok, b.ok);
            assert_eq!(a.enabled, b.enabled);
            assert_eq!(a.detected, b.detected);
            assert!(a.ok && a.elapsed_us > 0, "{a:?}");
            assert!(b.elapsed_us > 0, "{b:?}");
        }
    }

    #[test]
    fn empty_store_never_panics() {
        let mut store = LogStore::new();
        store.finalize();
        let out = run_pipeline(
            &store,
            TimeRange::new(Millis(0), Millis(1_000)),
            &[],
            None,
            &PipelineConfig::all_defaults(),
        );
        assert_eq!(out.health.len(), 3);
        // Whatever failed did so gracefully.
        for h in &out.health {
            assert!(h.ok || h.error.is_some() || !h.enabled, "{h:?}");
        }
    }
}
