//! Content-addressed evidence cache for the moving-landscape pipeline.
//!
//! §1.2 of the paper: HUG's landscape *moves*, so the miners run "around
//! the clock" over a sliding window (e.g. the trailing week). Advancing
//! a 7-day window by one day re-reads 6 days of logs whose evidence
//! cannot have changed — this module memoizes that evidence so only the
//! new day is recomputed.
//!
//! Every entry is **content-addressed** by an [`EvidenceKey`]:
//!
//! * a *fingerprint* of the full configuration (and, for L1, the
//!   candidate source list; for L3, the directory ids) — any parameter
//!   change silently misses instead of replaying stale evidence;
//! * the absolute `[start, end)` range the evidence covers;
//! * a *digest* of exactly the log content the computation may consult
//!   (see [`Timeline::digest_neighborhood`]) — late-arriving or edited
//!   records change the digest and invalidate the entry.
//!
//! Hits therefore never require trusting the caller: equal key ⇒ equal
//! inputs ⇒ (the computations being pure) byte-identical evidence. The
//! per-layer payloads are the *pre-threshold* accumulators — L1 slot
//! evidence triples, L2 [`BigramCounts`], L3 day citation counts — so
//! the final thresholding always runs fresh over the merged window and
//! matches the batch runners bit for bit.
//!
//! [`Timeline::digest_neighborhood`]: logdep_logstore::Timeline::digest_neighborhood

use crate::l1::{
    combine_evidence, slot_evidence, slot_token, L1Config, L1Result, ReferenceProcess,
    LOAD_JITTER_MS,
};
use crate::l2::{BigramCounts, L2Config};
use crate::l3::L3Config;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, SourceId};
use logdep_obs::{record, Field};
use logdep_par::{par_map, ParConfig};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// FNV-1a accumulator shared by the fingerprint and digest helpers.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    /// Folds bytes eight at a time (xor-multiply per `u64` word, FNV-1a
    /// on the tail) — the digests here cover megabytes of log text per
    /// window, and a byte-serial fold would dominate the warm path.
    pub(crate) fn push_bytes(&mut self, bytes: &[u8]) {
        let mut words = bytes.chunks_exact(8);
        for w in &mut words {
            let v = u64::from_le_bytes(w.try_into().unwrap_or([0; 8]));
            self.0 = (self.0 ^ v).wrapping_mul(0x0000_0100_0000_01b3);
        }
        for &b in words.remainder() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    pub(crate) fn push_u64(&mut self, v: u64) {
        self.push_bytes(&v.to_le_bytes());
    }

    pub(crate) fn push_i64(&mut self, v: i64) {
        self.push_bytes(&v.to_le_bytes());
    }

    pub(crate) fn push_str(&mut self, s: &str) {
        // Length prefix keeps adjacent strings from aliasing.
        self.push_u64(s.len() as u64);
        self.push_bytes(s.as_bytes());
    }

    /// Folds the exact bit pattern, so `-0.0` and `0.0` fingerprint
    /// differently — fine for config fields, which are compared for
    /// identity, not numeric equality.
    pub(crate) fn push_f64(&mut self, v: f64) {
        self.push_u64(v.to_bits());
    }

    pub(crate) fn push_bool(&mut self, v: bool) {
        self.push_u64(u64::from(v));
    }

    pub(crate) fn finish(self) -> u64 {
        self.0
    }
}

/// Content address of one cached evidence entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct EvidenceKey {
    /// Fingerprint of the configuration (and candidate lists).
    pub fingerprint: u64,
    /// Start of the covered range (ms).
    pub start: i64,
    /// End of the covered range (ms, exclusive).
    pub end: i64,
    /// Digest of the log content the evidence may consult.
    pub digest: u64,
}

impl EvidenceKey {
    fn overlaps(&self, range: TimeRange) -> bool {
        self.start < range.end.0 && self.end > range.start.0
    }
}

/// Cached per-day L3 scan: citation counts plus the stop/scan tallies.
/// Counts are monotone and additive, so day chunks merge exactly.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct L3DayCounts {
    /// Citation counts per `(app, service index)` in key order.
    pub citations: BTreeMap<(SourceId, usize), u64>,
    /// Records scanned (after stop filtering).
    pub scanned: u64,
    /// Records skipped by a stop pattern.
    pub stopped: u64,
}

/// Hit/miss counters per cached layer. Deltas (see [`CacheStats::since`])
/// tell a windowed run how much work the cache actually saved.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// L1 slot-evidence hits.
    pub l1_hits: u64,
    /// L1 slot-evidence misses (computed and inserted).
    pub l1_misses: u64,
    /// L2 session-day bigram hits.
    pub l2_hits: u64,
    /// L2 session-day bigram misses.
    pub l2_misses: u64,
    /// L3 day-scan hits.
    pub l3_hits: u64,
    /// L3 day-scan misses.
    pub l3_misses: u64,
}

impl CacheStats {
    /// Total hits across layers.
    pub fn hits(&self) -> u64 {
        self.l1_hits + self.l2_hits + self.l3_hits
    }

    /// Total misses across layers.
    pub fn misses(&self) -> u64 {
        self.l1_misses + self.l2_misses + self.l3_misses
    }

    /// Counter delta since an earlier snapshot.
    pub fn since(&self, earlier: &CacheStats) -> CacheStats {
        CacheStats {
            l1_hits: self.l1_hits.saturating_sub(earlier.l1_hits),
            l1_misses: self.l1_misses.saturating_sub(earlier.l1_misses),
            l2_hits: self.l2_hits.saturating_sub(earlier.l2_hits),
            l2_misses: self.l2_misses.saturating_sub(earlier.l2_misses),
            l3_hits: self.l3_hits.saturating_sub(earlier.l3_hits),
            l3_misses: self.l3_misses.saturating_sub(earlier.l3_misses),
        }
    }
}

/// The persistent evidence store: three content-addressed maps (one per
/// technique) plus session-local hit/miss counters. `BTreeMap` keeps the
/// serialized snapshot deterministic, so equal caches are byte-equal on
/// disk.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvidenceCache {
    version: u32,
    pub(crate) l1: BTreeMap<EvidenceKey, Vec<(u32, u32, bool)>>,
    pub(crate) l2: BTreeMap<EvidenceKey, BigramCounts>,
    pub(crate) l3: BTreeMap<EvidenceKey, L3DayCounts>,
    #[serde(skip)]
    pub(crate) stats: CacheStats,
}

impl Default for EvidenceCache {
    fn default() -> Self {
        Self::new()
    }
}

impl EvidenceCache {
    /// Snapshot-format version; bump on layout changes.
    pub const VERSION: u32 = 1;

    /// An empty cache.
    pub fn new() -> Self {
        Self {
            version: Self::VERSION,
            l1: BTreeMap::new(),
            l2: BTreeMap::new(),
            l3: BTreeMap::new(),
            stats: CacheStats::default(),
        }
    }

    /// Total number of cached entries across layers.
    pub fn len(&self) -> usize {
        self.l1.len() + self.l2.len() + self.l3.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Hit/miss counters accumulated since construction (or the last
    /// [`reset_stats`](Self::reset_stats)). Not persisted.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Zeroes the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Drops every entry whose range lies fully outside `window` —
    /// the retention policy of a sliding window. Returns the number of
    /// entries evicted.
    pub fn evict_outside(&mut self, window: TimeRange) -> usize {
        let before = self.len();
        self.l1.retain(|k, _| k.overlaps(window));
        self.l2.retain(|k, _| k.overlaps(window));
        self.l3.retain(|k, _| k.overlaps(window));
        before - self.len()
    }

    /// Drops every entry whose range overlaps `range` — a manual
    /// invalidation hook (and the test lever proving that re-derived
    /// evidence equals the cached evidence). Returns the number of
    /// entries dropped.
    pub fn invalidate_overlapping(&mut self, range: TimeRange) -> usize {
        let before = self.len();
        self.l1.retain(|k, _| !k.overlaps(range));
        self.l2.retain(|k, _| !k.overlaps(range));
        self.l3.retain(|k, _| !k.overlaps(range));
        before - self.len()
    }

    /// Serializes the cache to a JSON snapshot (stats excluded).
    pub fn to_json(&self) -> Result<String, String> {
        serde_json::to_string(self).map_err(|e| e.to_string())
    }

    /// Restores a cache from a JSON snapshot. A snapshot written by an
    /// incompatible [`VERSION`](Self::VERSION) deserializes to an empty
    /// cache — stale evidence is never replayed across format changes.
    pub fn from_json(s: &str) -> Result<Self, String> {
        let cache: Self = serde_json::from_str(s).map_err(|e| e.to_string())?;
        if cache.version != Self::VERSION {
            return Ok(Self::new());
        }
        Ok(cache)
    }
}

/// Fingerprint of an L1 configuration + candidate source list. Every
/// field is folded explicitly; the `fingerprint-completeness` lint
/// cross-checks this body against the fields of [`L1Config`], so a new
/// config field that never reaches the fingerprint is a lint deny, not
/// a silent cache-staleness bug.
pub fn l1_fingerprint(cfg: &L1Config, sources: &[SourceId]) -> u64 {
    let mut f = Fnv::new();
    f.push_str("l1");
    f.push_i64(cfg.slot_ms);
    f.push_u64(cfg.minlogs as u64);
    f.push_f64(cfg.th_pr);
    f.push_f64(cfg.th_s);
    f.push_f64(cfg.ci_level);
    f.push_u64(cfg.sample_size as u64);
    f.push_u64(cfg.seed);
    f.push_str(&format!("{:?}", cfg.distance));
    f.push_str(&format!("{:?}", cfg.stat));
    f.push_bool(cfg.two_sided);
    f.push_str(&format!("{:?}", cfg.reference));
    f.push_str(&format!("{:?}", cfg.decision));
    f.push_bool(cfg.retain_dists);
    for s in sources {
        f.push_u64(u64::from(s.0));
    }
    f.finish()
}

/// Digest of everything [`slot_evidence`] may consult for one slot:
/// each candidate timeline's slot neighborhood, widened by the jitter
/// margin when the load-proportional reference also draws (jittered)
/// picks from the overall log process — in that mode every active
/// source's neighborhood participates, because the pick pool spans all
/// sources.
pub(crate) fn l1_slot_digest(
    store: &LogStore,
    slot: TimeRange,
    sources: &[SourceId],
    cfg: &L1Config,
) -> u64 {
    let margin = match cfg.reference {
        ReferenceProcess::Homogeneous => 0,
        ReferenceProcess::LoadProportional => LOAD_JITTER_MS,
    };
    let mut f = Fnv::new();
    for &s in sources {
        f.push_u64(u64::from(s.0));
        f.push_u64(store.timeline(s).digest_neighborhood(slot, margin));
    }
    if matches!(cfg.reference, ReferenceProcess::LoadProportional) {
        for s in store.active_sources() {
            f.push_u64(u64::from(s.0));
            f.push_u64(store.timeline(s).digest_neighborhood(slot, margin));
        }
    }
    f.finish()
}

/// [`run_l1_slots_cached`] over the slot grid of `range` — the cached
/// twin of [`crate::l1::run_l1_pool`], byte-identical to it at every
/// thread count and cache state.
pub fn run_l1_cached(
    store: &LogStore,
    range: TimeRange,
    sources: &[SourceId],
    cfg: &L1Config,
    par: &ParConfig,
    cache: &mut EvidenceCache,
) -> crate::Result<L1Result> {
    cfg.validate()?;
    let slots = range.split(cfg.slot_ms);
    record(|r| {
        r.span_begin(
            "window.l1",
            &[
                ("start_ms", Field::from(range.start.0)),
                ("end_ms", Field::from(range.end.0)),
            ],
        );
    });
    let result = run_l1_slots_cached(store, &slots, sources, cfg, par, cache);
    record(|r| {
        r.span_end("window.l1", &[("slots", Field::from(slots.len()))]);
    });
    result
}

/// Technique L1 over an explicit slot list with slot-evidence
/// memoization: every slot is first probed in the cache by its content
/// address; only the misses fan out on the pool (through the very same
/// [`slot_evidence`] the batch runner uses), and their evidence is
/// inserted for the next run. The combined result is byte-identical to
/// [`crate::l1::run_l1_slots_pool`] regardless of which entries hit.
pub fn run_l1_slots_cached(
    store: &LogStore,
    slots: &[TimeRange],
    sources: &[SourceId],
    cfg: &L1Config,
    par: &ParConfig,
    cache: &mut EvidenceCache,
) -> crate::Result<L1Result> {
    cfg.validate()?;
    record(|r| {
        r.span_begin("l1.slots", &[("slots", Field::from(slots.len()))]);
    });
    let fp = l1_fingerprint(cfg, sources);

    let mut per_slot: Vec<Option<Vec<(usize, usize, bool)>>> = Vec::with_capacity(slots.len());
    let mut misses: Vec<(usize, EvidenceKey, u64, TimeRange)> = Vec::new();
    for (idx, &slot) in slots.iter().enumerate() {
        let key = EvidenceKey {
            fingerprint: fp,
            start: slot.start.0,
            end: slot.end.0,
            digest: l1_slot_digest(store, slot, sources, cfg),
        };
        match cache.l1.get(&key) {
            Some(stored) => {
                cache.stats.l1_hits += 1;
                per_slot.push(Some(decode_evidence(stored)));
            }
            None => {
                cache.stats.l1_misses += 1;
                per_slot.push(None);
                misses.push((idx, key, slot_token(slot, cfg.slot_ms), slot));
            }
        }
    }

    // The probe loop above ran on the caller thread, so the hit/miss
    // split — and therefore the trace — is identical at every width;
    // the pool below only computes, it never records.
    let hits = slots.len() as u64 - misses.len() as u64;
    let missed = misses.len() as u64;
    let computed: Vec<Vec<(usize, usize, bool)>> = par_map(par, &misses, |&(_, _, token, slot)| {
        slot_evidence(store, token, slot, sources, cfg)
    });
    for ((idx, key, _, _), evidence) in misses.into_iter().zip(computed) {
        cache.l1.insert(key, encode_evidence(&evidence));
        per_slot[idx] = Some(evidence);
    }
    record(|r| {
        r.counter_add("cache.l1.hits", hits);
        r.counter_add("cache.l1.misses", missed);
        r.span_end(
            "l1.slots",
            &[("hits", Field::from(hits)), ("misses", Field::from(missed))],
        );
    });

    let per_slot: Vec<Vec<(usize, usize, bool)>> = per_slot
        .into_iter()
        .map(Option::unwrap_or_default)
        .collect();
    Ok(combine_evidence(&per_slot, sources, cfg, slots.len()))
}

/// Compact storage form of slot evidence (pair positions fit u32).
fn encode_evidence(evidence: &[(usize, usize, bool)]) -> Vec<(u32, u32, bool)> {
    evidence
        .iter()
        .map(|&(i, j, pos)| {
            (
                u32::try_from(i).unwrap_or(u32::MAX),
                u32::try_from(j).unwrap_or(u32::MAX),
                pos,
            )
        })
        .collect()
}

fn decode_evidence(stored: &[(u32, u32, bool)]) -> Vec<(usize, usize, bool)> {
    stored
        .iter()
        .map(|&(i, j, pos)| (i as usize, j as usize, pos))
        .collect()
}

/// Fingerprint of an L2 configuration. Field-by-field, checked by the
/// `fingerprint-completeness` lint (see [`l1_fingerprint`]).
pub fn l2_fingerprint(cfg: &L2Config) -> u64 {
    let mut f = Fnv::new();
    f.push_str("l2");
    f.push_str(&format!("{:?}", cfg.timeout_ms));
    f.push_f64(cfg.alpha);
    f.push_str(&format!("{:?}", cfg.statistic));
    f.push_u64(cfg.min_joint);
    f.push_i64(cfg.session.max_gap_ms);
    f.push_u64(cfg.session.min_logs as u64);
    f.finish()
}

/// Fingerprint of an L3 configuration + directory id list. Field-by-
/// field, checked by the `fingerprint-completeness` lint (see
/// [`l1_fingerprint`]).
pub fn l3_fingerprint(cfg: &L3Config, service_ids: &[String]) -> u64 {
    let mut f = Fnv::new();
    f.push_str("l3");
    f.push_u64(cfg.stop_patterns.len() as u64);
    for p in &cfg.stop_patterns {
        f.push_str(p);
    }
    f.push_bool(cfg.whole_word);
    f.push_u64(cfg.min_citations);
    for id in service_ids {
        f.push_str(id);
    }
    f.finish()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;
    use logdep_logstore::{LogRecord, Millis};

    fn coupled_store(hours: i64) -> (LogStore, Vec<SourceId>) {
        let mut store = LogStore::new();
        let s0 = store.registry.source("App0");
        let s1 = store.registry.source("App1");
        for h in 0..hours {
            let base = h * MS_PER_HOUR;
            for i in 0..120 {
                let t = base + i * 23_000 % MS_PER_HOUR;
                store.push(LogRecord::minimal(s0, Millis(t)));
                store.push(LogRecord::minimal(s1, Millis(t + 40)));
            }
        }
        store.finalize();
        (store, vec![s0, s1])
    }

    fn cfg() -> L1Config {
        L1Config {
            minlogs: 40,
            seed: 5,
            ..L1Config::default()
        }
    }

    #[test]
    fn cached_l1_matches_batch_cold_and_warm() {
        let (store, sources) = coupled_store(4);
        let range = TimeRange::new(Millis(0), Millis(4 * MS_PER_HOUR));
        let batch = crate::l1::run_l1(&store, range, &sources, &cfg()).unwrap();

        let mut cache = EvidenceCache::new();
        let par = ParConfig::serial();
        let cold = run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();
        assert_eq!(cold, batch);
        assert_eq!(cache.stats().l1_misses, 4);
        assert_eq!(cache.stats().l1_hits, 0);

        let warm = run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();
        assert_eq!(warm, batch);
        assert_eq!(cache.stats().l1_hits, 4);
    }

    #[test]
    fn config_change_misses_instead_of_replaying() {
        let (store, sources) = coupled_store(2);
        let range = TimeRange::new(Millis(0), Millis(2 * MS_PER_HOUR));
        let mut cache = EvidenceCache::new();
        let par = ParConfig::serial();
        run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();
        let other = L1Config { seed: 99, ..cfg() };
        run_l1_cached(&store, range, &sources, &other, &par, &mut cache).unwrap();
        assert_eq!(cache.stats().l1_hits, 0);
        assert_eq!(cache.stats().l1_misses, 4);
    }

    #[test]
    fn new_records_in_a_slot_invalidate_only_that_slot() {
        let (mut store, sources) = coupled_store(3);
        store.finalize();
        let range = TimeRange::new(Millis(0), Millis(3 * MS_PER_HOUR));
        let mut cache = EvidenceCache::new();
        let par = ParConfig::serial();
        run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();

        // Append a record deep inside slot 1 (away from slot edges).
        store.push(LogRecord::minimal(
            sources[0],
            Millis(MS_PER_HOUR + MS_PER_HOUR / 2),
        ));
        store.finalize();
        run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();
        let stats = cache.stats();
        assert_eq!(stats.l1_hits, 2, "untouched slots must hit");
        assert_eq!(stats.l1_misses, 4, "3 cold + 1 invalidated");
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let (store, sources) = coupled_store(2);
        let range = TimeRange::new(Millis(0), Millis(2 * MS_PER_HOUR));
        let mut cache = EvidenceCache::new();
        let par = ParConfig::serial();
        let first = run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();

        let snapshot = cache.to_json().expect("serialize");
        let mut restored = EvidenceCache::from_json(&snapshot).expect("parse");
        assert_eq!(restored.len(), cache.len());
        let warm = run_l1_cached(&store, range, &sources, &cfg(), &par, &mut restored).unwrap();
        assert_eq!(warm, first);
        assert_eq!(restored.stats().l1_hits, 2);
        assert_eq!(restored.stats().l1_misses, 0);
    }

    #[test]
    fn eviction_and_invalidation_are_range_scoped() {
        let (store, sources) = coupled_store(4);
        let range = TimeRange::new(Millis(0), Millis(4 * MS_PER_HOUR));
        let mut cache = EvidenceCache::new();
        let par = ParConfig::serial();
        run_l1_cached(&store, range, &sources, &cfg(), &par, &mut cache).unwrap();
        assert_eq!(cache.len(), 4);

        let dropped = cache.invalidate_overlapping(TimeRange::new(Millis(0), Millis(MS_PER_HOUR)));
        assert_eq!(dropped, 1);
        let evicted =
            cache.evict_outside(TimeRange::new(Millis(MS_PER_HOUR), Millis(3 * MS_PER_HOUR)));
        assert_eq!(evicted, 1, "slot 3 lies outside the retained window");
        assert_eq!(cache.len(), 2);
    }

    #[test]
    fn version_mismatch_yields_a_fresh_cache() {
        let mut cache = EvidenceCache::new();
        cache.l1.insert(
            EvidenceKey {
                fingerprint: 1,
                start: 0,
                end: 1,
                digest: 2,
            },
            Vec::new(),
        );
        cache.version = EvidenceCache::VERSION + 1;
        let snapshot = cache.to_json().expect("serialize");
        let restored = EvidenceCache::from_json(&snapshot).expect("parse");
        assert!(restored.is_empty());
    }
}
