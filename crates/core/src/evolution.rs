//! Tracking the moving landscape: model evolution between mining runs.
//!
//! The paper's title problem is that the landscape *moves* — the whole
//! point of automated model generation is re-running it and seeing
//! what changed. This module compares two mined models (say, last
//! week's and this week's) and reports appeared/disappeared
//! dependencies, plus a stability summary an operator can alert on.

use crate::model::{AppServiceModel, PairModel};
use logdep_logstore::SourceId;
use serde::{Deserialize, Serialize};

/// Change report between two models of the same flavour.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Churn<T: Ord> {
    /// Dependencies present now but not before.
    pub appeared: Vec<T>,
    /// Dependencies present before but not now.
    pub disappeared: Vec<T>,
    /// Dependencies present in both.
    pub stable: Vec<T>,
}

impl<T: Ord> Default for Churn<T> {
    fn default() -> Self {
        Self {
            appeared: Vec::new(),
            disappeared: Vec::new(),
            stable: Vec::new(),
        }
    }
}

impl<T: Ord> Churn<T> {
    /// Jaccard stability of the two models: |∩| / |∪| (1.0 when both
    /// are empty — nothing moved).
    pub fn stability(&self) -> f64 {
        let union = self.appeared.len() + self.disappeared.len() + self.stable.len();
        if union == 0 {
            1.0
        } else {
            self.stable.len() as f64 / union as f64
        }
    }

    /// Total number of changes.
    pub fn n_changes(&self) -> usize {
        self.appeared.len() + self.disappeared.len()
    }
}

/// Compares two pair models (L1/L2 output).
pub fn pair_churn(before: &PairModel, after: &PairModel) -> Churn<(SourceId, SourceId)> {
    let mut churn = Churn::default();
    for p in after.iter() {
        if before.contains(p.0, p.1) {
            churn.stable.push(p);
        } else {
            churn.appeared.push(p);
        }
    }
    for p in before.iter() {
        if !after.contains(p.0, p.1) {
            churn.disappeared.push(p);
        }
    }
    churn
}

/// Compares two app→service models (L3 output). Both models must be
/// indexed against the same service-id list.
pub fn app_service_churn(
    before: &AppServiceModel,
    after: &AppServiceModel,
) -> Churn<(SourceId, usize)> {
    let mut churn = Churn::default();
    for d in after.iter() {
        if before.contains(d.0, d.1) {
            churn.stable.push(d);
        } else {
            churn.appeared.push(d);
        }
    }
    for d in before.iter() {
        if !after.contains(d.0, d.1) {
            churn.disappeared.push(d);
        }
    }
    churn
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    #[test]
    fn pair_churn_partitions() {
        let before: PairModel = [(s(1), s(2)), (s(1), s(3))].into_iter().collect();
        let after: PairModel = [(s(1), s(2)), (s(2), s(4))].into_iter().collect();
        let c = pair_churn(&before, &after);
        assert_eq!(c.stable, vec![(s(1), s(2))]);
        assert_eq!(c.appeared, vec![(s(2), s(4))]);
        assert_eq!(c.disappeared, vec![(s(1), s(3))]);
        assert_eq!(c.n_changes(), 2);
        assert!((c.stability() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn identical_models_are_fully_stable() {
        let m: PairModel = [(s(1), s(2))].into_iter().collect();
        let c = pair_churn(&m, &m.clone());
        assert_eq!(c.stability(), 1.0);
        assert_eq!(c.n_changes(), 0);
    }

    #[test]
    fn empty_models() {
        let c = pair_churn(&PairModel::new(), &PairModel::new());
        assert_eq!(c.stability(), 1.0);
        let c = pair_churn(&PairModel::new(), &[(s(0), s(1))].into_iter().collect());
        assert_eq!(c.stability(), 0.0);
        assert_eq!(c.appeared.len(), 1);
    }

    #[test]
    fn app_service_churn_partitions() {
        let before: AppServiceModel = [(s(0), 0), (s(0), 1)].into_iter().collect();
        let after: AppServiceModel = [(s(0), 1), (s(1), 2)].into_iter().collect();
        let c = app_service_churn(&before, &after);
        assert_eq!(c.stable, vec![(s(0), 1)]);
        assert_eq!(c.appeared, vec![(s(1), 2)]);
        assert_eq!(c.disappeared, vec![(s(0), 0)]);
    }
}
