//! Configuration of technique L1.

use logdep_logstore::time::MS_PER_HOUR;
use serde::{Deserialize, Serialize};

/// Which distance from a point to a log sequence is measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DistanceKind {
    /// Distance to the nearest log in either direction — equation (1)
    /// of the paper (its choice).
    Nearest,
    /// Distance to the next log at or after the point — the variant of
    /// Li & Ma's temporal-pattern miner.
    Next,
}

/// The reference process random comparison points are drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReferenceProcess {
    /// Uniform points in the slot — the paper's published method.
    Homogeneous,
    /// Points drawn from the overall log process (jittered) — the §5
    /// improvement: "a non-homogenous process whose intensity is
    /// proportional to the total number of logs", which cancels the
    /// shared diurnal-load structure out of the comparison.
    LoadProportional,
}

/// How the per-slot decision is made from the two distance samples.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum DecisionRule {
    /// The paper's rule: the CI of `S_b` must lie entirely below (or,
    /// two-sided, entirely outside) the CI of `S_r`.
    CiSeparation,
    /// Ablation alternative: a Mann–Whitney rank-sum test of `S_b`
    /// against `S_r` at the given significance level.
    RankSum {
        /// Significance level of the rank-sum test.
        alpha: f64,
    },
}

/// Which location statistic the test compares.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CenterStat {
    /// Robust median with order-statistics CI (the paper's choice).
    Median,
    /// Mean with a normal-theory CI (Li & Ma's choice).
    Mean,
}

/// Parameters of technique L1.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L1Config {
    /// Slot width in milliseconds (the paper: one hour, n = 24 per day).
    pub slot_ms: i64,
    /// Minimum logs per application per slot; slots below are skipped
    /// (the paper: `minlogs = 100` at 10 M logs/day — scale accordingly).
    pub minlogs: usize,
    /// Threshold on the fraction of positive slots (the paper: 0.6).
    pub th_pr: f64,
    /// Threshold on the support as a *fraction of all slots*
    /// (the paper: 0.3 of n = 24).
    pub th_s: f64,
    /// Confidence level of the per-slot median CIs (the paper: 0.95).
    pub ci_level: f64,
    /// Sample size for both the subsample of B and the random points.
    pub sample_size: usize,
    /// Seed for subsampling and random-point generation.
    pub seed: u64,
    /// Distance variant.
    pub distance: DistanceKind,
    /// Location statistic.
    pub stat: CenterStat,
    /// `false` = one-sided (ours: B closer than random); `true` =
    /// two-sided (Li–Ma: any separation of the intervals counts).
    pub two_sided: bool,
    /// Reference process for the comparison points.
    pub reference: ReferenceProcess,
    /// Decision rule applied to the two samples.
    pub decision: DecisionRule,
    /// Keep the raw sorted distances inside each
    /// [`DistanceSamples`](super::DistanceSamples) (`true`, the
    /// default, for snapshots and diagnostics). Off, each sample keeps
    /// only its center and CI bounds — verdict-sized entries for the
    /// slot-evidence cache. Incompatible with [`DecisionRule::RankSum`],
    /// which needs the raw values.
    pub retain_dists: bool,
}

impl Default for L1Config {
    fn default() -> Self {
        Self {
            slot_ms: MS_PER_HOUR,
            minlogs: 100,
            th_pr: 0.6,
            th_s: 0.3,
            ci_level: 0.95,
            sample_size: 350,
            seed: 0,
            distance: DistanceKind::Nearest,
            stat: CenterStat::Median,
            two_sided: false,
            reference: ReferenceProcess::Homogeneous,
            decision: DecisionRule::CiSeparation,
            retain_dists: true,
        }
    }
}

impl L1Config {
    /// The paper's parameters (§4.5) at full HUG scale.
    pub fn paper() -> Self {
        Self::default()
    }

    /// The paper's parameters with `minlogs` rescaled for a log volume
    /// `scale` times the paper's 10 M logs/day.
    pub fn paper_scaled(scale: f64) -> Self {
        Self {
            minlogs: ((100.0 * scale).round() as usize).max(8),
            ..Self::default()
        }
    }

    /// The Li–Ma style baseline: next-arrival distance, mean statistic,
    /// two-sided comparison.
    pub fn li_ma_baseline() -> Self {
        Self {
            distance: DistanceKind::Next,
            stat: CenterStat::Mean,
            two_sided: true,
            ..Self::default()
        }
    }

    /// Validates threshold ranges.
    pub fn validate(&self) -> crate::Result<()> {
        if self.slot_ms <= 0 {
            return Err(crate::MineError::InvalidConfig {
                name: "slot_ms",
                reason: "must be positive".into(),
            });
        }
        for (name, v) in [("th_pr", self.th_pr), ("th_s", self.th_s)] {
            if !(0.0..=1.0).contains(&v) {
                return Err(crate::MineError::InvalidConfig {
                    name,
                    reason: format!("{v} outside [0, 1]"),
                });
            }
        }
        if !(self.ci_level > 0.0 && self.ci_level < 1.0) {
            return Err(crate::MineError::InvalidConfig {
                name: "ci_level",
                reason: format!("{} outside (0, 1)", self.ci_level),
            });
        }
        if let DecisionRule::RankSum { alpha } = self.decision {
            if !(alpha > 0.0 && alpha < 1.0) {
                return Err(crate::MineError::InvalidConfig {
                    name: "decision.alpha",
                    reason: format!("{alpha} outside (0, 1)"),
                });
            }
        }
        if self.sample_size < 10 {
            return Err(crate::MineError::InvalidConfig {
                name: "sample_size",
                reason: "need at least 10 points for a usable CI".into(),
            });
        }
        if !self.retain_dists && matches!(self.decision, DecisionRule::RankSum { .. }) {
            return Err(crate::MineError::InvalidConfig {
                name: "retain_dists",
                reason: "rank-sum decisions need the raw distance samples".into(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = L1Config::paper();
        assert_eq!(c.slot_ms, MS_PER_HOUR);
        assert_eq!(c.minlogs, 100);
        assert_eq!(c.th_pr, 0.6);
        assert_eq!(c.th_s, 0.3);
        assert_eq!(c.ci_level, 0.95);
        assert_eq!(c.distance, DistanceKind::Nearest);
        assert_eq!(c.stat, CenterStat::Median);
        assert!(!c.two_sided);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn scaled_minlogs() {
        assert_eq!(L1Config::paper_scaled(1.0).minlogs, 100);
        assert_eq!(L1Config::paper_scaled(0.3).minlogs, 30);
        assert_eq!(L1Config::paper_scaled(0.001).minlogs, 8, "floor applies");
    }

    #[test]
    fn baseline_flips_all_three_choices() {
        let b = L1Config::li_ma_baseline();
        assert_eq!(b.distance, DistanceKind::Next);
        assert_eq!(b.stat, CenterStat::Mean);
        assert!(b.two_sided);
    }

    #[test]
    fn validation_rejects_bad_values() {
        let bad = L1Config {
            slot_ms: 0,
            ..L1Config::default()
        };
        assert!(bad.validate().is_err());
        let bad = L1Config {
            th_pr: 1.5,
            ..L1Config::default()
        };
        assert!(bad.validate().is_err());
        let bad = L1Config {
            ci_level: 1.0,
            ..L1Config::default()
        };
        assert!(bad.validate().is_err());
        let bad = L1Config {
            sample_size: 3,
            ..L1Config::default()
        };
        assert!(bad.validate().is_err());
        let bad = L1Config {
            decision: DecisionRule::RankSum { alpha: 0.0 },
            ..L1Config::default()
        };
        assert!(bad.validate().is_err());
        let bad = L1Config {
            retain_dists: false,
            decision: DecisionRule::RankSum { alpha: 0.01 },
            ..L1Config::default()
        };
        assert!(bad.validate().is_err(), "rank-sum needs raw distances");
        let ok = L1Config {
            retain_dists: false,
            ..L1Config::default()
        };
        assert!(ok.validate().is_ok(), "CI separation works without them");
    }
}
