//! The per-slot statistical test of technique L1.
//!
//! For a slot and a direction "is B attracted to A": draw the distances
//! from (a subsample of) B's slot logs to the nearest (or next) log of
//! A, draw distances from uniformly random points in the slot to A, and
//! compare confidence intervals of the two location statistics.

use super::config::{CenterStat, DecisionRule, DistanceKind, L1Config};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{Millis, Timeline};
use logdep_stats::{descriptive, order_stats, sampling::Sampler, tdist};
use serde::{Deserialize, Serialize};

/// Distance samples of one side of the comparison, with its CI.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceSamples {
    /// Sorted distances in milliseconds (empty when
    /// [`L1Config::retain_dists`] is off).
    pub dists: Vec<f64>,
    /// Location estimate (median or mean per config).
    pub center: f64,
    /// CI lower bound.
    pub lower: f64,
    /// CI upper bound.
    pub upper: f64,
}

/// Outcome of one directional test.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectionOutcome {
    /// True when the test concluded B's logs are significantly closer
    /// to A's logs than random points are.
    pub positive: bool,
    /// The B-side sample (`S_b` in the paper).
    pub sample_b: DistanceSamples,
    /// The random-side sample (`S_r`).
    pub sample_r: DistanceSamples,
}

/// Collects the distances of `points` to timeline `a` under the
/// configured distance kind. Points with no defined distance (empty
/// timeline, or nothing after the point for [`DistanceKind::Next`]) are
/// dropped.
///
/// The query points are sorted once and every distance comes from one
/// O(n + m) two-pointer merge sweep ([`Timeline::dists_to_nearest_sorted`])
/// instead of a binary search per point. The multiset of distances is
/// identical to the per-point search — only their order changes, and
/// [`summarize`] sorts anyway.
fn distances(a: &Timeline, points: &[Millis], kind: DistanceKind) -> Vec<f64> {
    let mut sorted: Vec<Millis> = points.to_vec();
    sorted.sort_unstable();
    let raw = match kind {
        DistanceKind::Nearest => a.dists_to_nearest_sorted(&sorted),
        DistanceKind::Next => a.dists_to_next_sorted(&sorted),
    };
    raw.into_iter().map(|d| d as f64).collect()
}

/// Sorts a distance sample produced by the merge sweep. Distances of
/// ascending query points form few monotone runs (a descending-then-
/// ascending "V" between consecutive logs of `a`), so a natural
/// bottom-up merge — reverse each descending run, then pairwise-merge
/// adjacent runs — finishes in O(m log r) for r runs instead of the
/// general O(m log m) comparison sort. Every value is a non-negative
/// integer distance cast to f64 (finite, never NaN, never −0.0), so
/// `<=` is a total order here and the output is bit-identical to
/// `sort_by(total_cmp)`.
fn sort_distance_runs(mut v: Vec<f64>) -> Vec<f64> {
    let n = v.len();
    if n < 2 {
        return v;
    }
    // Pass 1: split into maximal monotone runs (run starts + final n),
    // reversing strictly-descending runs in place so every run ascends.
    let mut bounds = Vec::new();
    let mut i = 0;
    while i < n {
        let start = i;
        i += 1;
        if i < n && v[i] < v[i - 1] {
            while i < n && v[i] < v[i - 1] {
                i += 1;
            }
            v[start..i].reverse();
        } else {
            while i < n && v[i] >= v[i - 1] {
                i += 1;
            }
        }
        bounds.push(start);
    }
    bounds.push(n);

    // Pass 2+: merge adjacent run pairs until a single run remains.
    let mut src = v;
    let mut dst: Vec<f64> = Vec::with_capacity(n);
    while bounds.len() > 2 {
        let mut next_bounds = Vec::with_capacity(bounds.len() / 2 + 2);
        dst.clear();
        let mut b = 0;
        while b + 2 < bounds.len() {
            next_bounds.push(dst.len());
            merge_sorted_runs(
                &src[bounds[b]..bounds[b + 1]],
                &src[bounds[b + 1]..bounds[b + 2]],
                &mut dst,
            );
            b += 2;
        }
        if b + 1 < bounds.len() {
            // Odd run out: carry it to the next round unchanged.
            next_bounds.push(dst.len());
            dst.extend_from_slice(&src[bounds[b]..bounds[b + 1]]);
        }
        next_bounds.push(dst.len());
        std::mem::swap(&mut src, &mut dst);
        bounds = next_bounds;
    }
    src
}

/// Merges two ascending runs into `out` (finite values only).
fn merge_sorted_runs(a: &[f64], b: &[f64], out: &mut Vec<f64>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        if a[i] <= b[j] {
            out.push(a[i]);
            i += 1;
        } else {
            out.push(b[j]);
            j += 1;
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
}

/// Builds the CI for a distance sample under the configured statistic.
/// With `cfg.retain_dists` off the raw distances are dropped after the
/// CI is computed, leaving a verdict-sized sample (the cached hot path;
/// [`L1Config::validate`] rejects the combination with the rank-sum
/// rule, which needs the raw values).
fn summarize(dists: Vec<f64>, cfg: &L1Config) -> Option<DistanceSamples> {
    if dists.len() < 10 {
        return None;
    }
    let mut dists = sort_distance_runs(dists);
    let (center, lower, upper) = match cfg.stat {
        CenterStat::Median => {
            let ci = order_stats::median_ci_sorted(&dists, cfg.ci_level).ok()?;
            (ci.point, ci.lower, ci.upper)
        }
        CenterStat::Mean => {
            let n = dists.len() as f64;
            let mean = descriptive::mean(&dists).ok()?;
            let sd = descriptive::std_dev(&dists).ok()?;
            let t = tdist::two_sided_t(cfg.ci_level, n - 1.0).ok()?;
            let half = t * sd / n.sqrt();
            (mean, mean - half, mean + half)
        }
    };
    if !cfg.retain_dists {
        dists = Vec::new();
    }
    Some(DistanceSamples {
        center,
        lower,
        upper,
        dists,
    })
}

/// Random-side sample of the test: distances of `sample_size` uniform
/// points in `range` to timeline `a`. Reusable across all `B`s sharing
/// the same `A` and slot — the hot-path optimization of [`run_l1`].
///
/// [`run_l1`]: super::run_l1
pub(crate) fn random_side(
    a: &Timeline,
    range: TimeRange,
    cfg: &L1Config,
    sampler: &mut Sampler,
) -> Option<DistanceSamples> {
    let points: Vec<Millis> = sampler
        .uniform_points(range.start.0 as f64, range.end.0 as f64, cfg.sample_size)
        .into_iter()
        .map(|x| Millis(x as i64))
        .collect();
    summarize(distances(a, &points, cfg.distance), cfg)
}

/// Reference side built from explicit comparison points (the
/// load-proportional reference process of §5).
pub(crate) fn side_from_points(
    a: &Timeline,
    points: &[Millis],
    cfg: &L1Config,
) -> Option<DistanceSamples> {
    summarize(distances(a, points, cfg.distance), cfg)
}

/// B-side sample: distances of (a subsample of) B's logs in `range`
/// to timeline `a`.
pub(crate) fn b_side(
    a: &Timeline,
    b_slot: &[Millis],
    cfg: &L1Config,
    sampler: &mut Sampler,
) -> Option<DistanceSamples> {
    let points = sampler.subsample(b_slot, cfg.sample_size);
    summarize(distances(a, &points, cfg.distance), cfg)
}

/// Decides the direction test given both sides.
pub(crate) fn decide(b: &DistanceSamples, r: &DistanceSamples, cfg: &L1Config) -> bool {
    match cfg.decision {
        DecisionRule::CiSeparation => {
            if cfg.two_sided {
                // Li–Ma style: any separation of the intervals is a signal.
                b.upper < r.lower || b.lower > r.upper
            } else {
                // One-sided: B must be *closer* than random.
                b.upper < r.lower
            }
        }
        DecisionRule::RankSum { alpha } => {
            use logdep_stats::ranksum::{rank_sum, RankSumAlternative};
            let alt = if cfg.two_sided {
                RankSumAlternative::TwoSided
            } else {
                RankSumAlternative::Less
            };
            rank_sum(&b.dists, &r.dists, alt)
                .map(|res| res.p_value <= alpha)
                .unwrap_or(false)
        }
    }
}

/// One-shot directional test (used by Figure 2 and by tests; the bulk
/// runner assembles the same pieces with the random side cached).
pub fn direction_test(
    a: &Timeline,
    b: &Timeline,
    range: TimeRange,
    cfg: &L1Config,
    sampler: &mut Sampler,
) -> Option<DirectionOutcome> {
    let sample_r = random_side(a, range, cfg, sampler)?;
    let sample_b = b_side(a, b.slice_in(range), cfg, sampler)?;
    let positive = decide(&sample_b, &sample_r, cfg);
    Some(DirectionOutcome {
        positive,
        sample_b,
        sample_r,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;

    fn cfg() -> L1Config {
        L1Config {
            seed: 1,
            ..L1Config::default()
        }
    }

    fn hour() -> TimeRange {
        TimeRange::new(Millis(0), Millis(MS_PER_HOUR))
    }

    /// A and B interact: B's logs always land 50 ms after one of A's.
    fn coupled_pair() -> (Timeline, Timeline) {
        let a: Vec<Millis> = (0..200).map(|i| Millis(i * 18_000)).collect();
        let b: Vec<Millis> = a.iter().map(|t| Millis(t.0 + 50)).collect();
        (Timeline::from_sorted(a), Timeline::from_sorted(b))
    }

    /// A and B are unrelated: B's logs are offset-free of A's grid but
    /// deterministically spread.
    fn unrelated_pair() -> (Timeline, Timeline) {
        let a: Vec<Millis> = (0..200).map(|i| Millis(i * 18_000)).collect();
        let b: Vec<Millis> = (0..200).map(|i| Millis(i * 17_351 + 9_311)).collect();
        (Timeline::from_sorted(a), Timeline::from_sorted(b))
    }

    #[test]
    fn detects_coupled_activity() {
        let (a, b) = coupled_pair();
        let mut s = Sampler::from_seed(1);
        let out = direction_test(&a, &b, hour(), &cfg(), &mut s).expect("enough data");
        assert!(out.positive, "coupled pair not detected");
        assert!(out.sample_b.center < out.sample_r.center);
        assert!(out.sample_b.upper < out.sample_r.lower);
    }

    #[test]
    fn rejects_unrelated_activity() {
        let (a, b) = unrelated_pair();
        let mut s = Sampler::from_seed(2);
        let out = direction_test(&a, &b, hour(), &cfg(), &mut s).expect("enough data");
        assert!(!out.positive, "unrelated pair flagged");
    }

    #[test]
    fn boxplot_direction_roles_are_asymmetric() {
        // Same data as Figure 1/2: both directions should be positive
        // for a truly coupled pair.
        let (a, b) = coupled_pair();
        let mut s = Sampler::from_seed(3);
        let ab = direction_test(&a, &b, hour(), &cfg(), &mut s).expect("data");
        let ba = direction_test(&b, &a, hour(), &cfg(), &mut s).expect("data");
        assert!(ab.positive && ba.positive);
    }

    #[test]
    fn too_few_points_returns_none() {
        let a = Timeline::from_sorted(vec![Millis(5)]);
        let b = Timeline::from_sorted((0..5).map(|i| Millis(i * 100)).collect());
        let mut s = Sampler::from_seed(4);
        assert!(direction_test(&a, &b, hour(), &cfg(), &mut s).is_none());
    }

    #[test]
    fn empty_a_returns_none() {
        let a = Timeline::empty();
        let b = Timeline::from_sorted((0..100).map(|i| Millis(i * 100)).collect());
        let mut s = Sampler::from_seed(5);
        assert!(direction_test(&a, &b, hour(), &cfg(), &mut s).is_none());
    }

    #[test]
    fn next_distance_variant_works() {
        let (a, b) = coupled_pair();
        let c = L1Config {
            distance: DistanceKind::Next,
            ..cfg()
        };
        let mut s = Sampler::from_seed(6);
        // With next-arrival distance the coupled B (50 ms *after* each A
        // log) sees a large distance to the next A log, so the one-sided
        // "closer" test must NOT fire...
        let out = direction_test(&a, &b, hour(), &c, &mut s).expect("data");
        assert!(!out.positive);
        // ...but the two-sided variant detects the separation.
        let c2 = L1Config {
            two_sided: true,
            ..c
        };
        let out = direction_test(&a, &b, hour(), &c2, &mut s).expect("data");
        assert!(out.positive, "two-sided next-arrival should separate");
    }

    #[test]
    fn mean_statistic_variant_detects_coupling() {
        let (a, b) = coupled_pair();
        let c = L1Config {
            stat: CenterStat::Mean,
            ..cfg()
        };
        let mut s = Sampler::from_seed(7);
        let out = direction_test(&a, &b, hour(), &c, &mut s).expect("data");
        assert!(out.positive);
        assert!(out.sample_b.lower <= out.sample_b.center);
        assert!(out.sample_b.center <= out.sample_b.upper);
    }

    #[test]
    fn rank_sum_decision_rule_agrees_on_clear_cases() {
        let (a, b) = coupled_pair();
        let c = L1Config {
            decision: DecisionRule::RankSum { alpha: 0.01 },
            ..cfg()
        };
        let mut s = Sampler::from_seed(8);
        let out = direction_test(&a, &b, hour(), &c, &mut s).expect("data");
        assert!(out.positive, "rank-sum rule missed the coupled pair");

        let (a, b) = unrelated_pair();
        let mut s = Sampler::from_seed(9);
        let out = direction_test(&a, &b, hour(), &c, &mut s).expect("data");
        assert!(!out.positive, "rank-sum rule flagged an unrelated pair");
    }

    #[test]
    fn run_sort_matches_general_sort() {
        let cases: Vec<Vec<f64>> = vec![
            vec![],
            vec![3.0],
            vec![5.0, 1.0],
            vec![9.0, 7.0, 3.0, 1.0, 0.0, 2.0, 4.0, 8.0], // one V
            vec![1.0, 2.0, 3.0, 2.0, 1.0, 2.0, 3.0, 2.0], // zig-zag
            vec![4.0, 4.0, 4.0, 1.0, 1.0, 9.0],           // ties
            (0..100).map(|i| ((i * 37) % 41) as f64).collect(),
        ];
        for case in cases {
            let mut expect = case.clone();
            expect.sort_by(|a, b| a.total_cmp(b));
            assert_eq!(sort_distance_runs(case.clone()), expect, "case {case:?}");
        }
    }

    #[test]
    fn retain_dists_off_keeps_the_verdict_drops_the_sample() {
        let (a, b) = coupled_pair();
        let on = cfg();
        let off = L1Config {
            retain_dists: false,
            ..cfg()
        };
        let mut s1 = Sampler::from_seed(11);
        let mut s2 = Sampler::from_seed(11);
        let kept = direction_test(&a, &b, hour(), &on, &mut s1).expect("data");
        let slim = direction_test(&a, &b, hour(), &off, &mut s2).expect("data");
        assert_eq!(kept.positive, slim.positive);
        assert_eq!(kept.sample_b.center, slim.sample_b.center);
        assert_eq!(kept.sample_b.lower, slim.sample_b.lower);
        assert_eq!(kept.sample_b.upper, slim.sample_b.upper);
        assert_eq!(kept.sample_r.center, slim.sample_r.center);
        assert!(!kept.sample_b.dists.is_empty());
        assert!(slim.sample_b.dists.is_empty() && slim.sample_r.dists.is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let (a, b) = coupled_pair();
        let mut s1 = Sampler::from_seed(42);
        let mut s2 = Sampler::from_seed(42);
        let o1 = direction_test(&a, &b, hour(), &cfg(), &mut s1).expect("data");
        let o2 = direction_test(&a, &b, hour(), &cfg(), &mut s2).expect("data");
        assert_eq!(o1, o2);
    }
}
