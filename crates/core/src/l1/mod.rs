//! Technique L1: logs as an activity measure.
//!
//! §3.1 of the paper. Each application is reduced to the sequence of its
//! log timestamps; for an ordered pair `(A, B)` the *distance to the
//! nearest log of A* (equation 1) is sampled at the logs of `B` and at
//! uniformly random points, and robust order-statistics confidence
//! intervals for the two **medians** are compared. If the whole CI of
//! the B-sample lies below the CI of the random sample, B's logs are
//! closer to A's than chance.
//!
//! To neutralize the shared diurnal-load confounder, the test runs
//! *locally* on short time slots (an hour each) and the local outcomes
//! are combined: a pair is declared dependent when the fraction of
//! positive slots `pr` and the support `s` (slots where both apps had at
//! least `minlogs` logs) clear thresholds `th_pr` and `th_s`.
//!
//! The module also implements the **Li–Ma style baseline** the test was
//! adapted from (distance to the *next* arrival, a two-sided test on the
//! *mean*), so the paper's three design deltas — median vs mean, nearest
//! vs next, one-sided vs two-sided — can each be ablated.

mod adaptive;
mod algorithm;
mod config;
mod test;

pub use adaptive::{adaptive_slots, AdaptiveConfig};
pub(crate) use algorithm::{combine_evidence, slot_evidence, slot_token, LOAD_JITTER_MS};
pub use algorithm::{run_l1, run_l1_pool, run_l1_slots, run_l1_slots_pool, L1Result, PairOutcome};
pub use config::{CenterStat, DecisionRule, DistanceKind, L1Config, ReferenceProcess};
pub use test::{direction_test, DirectionOutcome, DistanceSamples};
