//! The slot-combining runner of technique L1.
//!
//! Splits the analysis range into slots, runs the directional test both
//! ways for every candidate pair active enough in the slot, and combines
//! the slot verdicts with the `pr`/`support` thresholds of §3.1.
//!
//! The random-side sample depends only on `(A, slot)`, so it is computed
//! once per active source per slot and shared across all partners — this
//! is what keeps a full day over 1431 pairs tractable.

use super::config::{L1Config, ReferenceProcess};
use super::test::{b_side, decide, random_side, side_from_points, DistanceSamples};
use crate::model::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, Millis, SourceId};
use logdep_par::{par_map, ParConfig};
use logdep_stats::sampling::Sampler;
use serde::{Deserialize, Serialize};

/// Combined result of one pair over all slots.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PairOutcome {
    /// First application (smaller id).
    pub a: SourceId,
    /// Second application.
    pub b: SourceId,
    /// Slots where both apps cleared `minlogs` (the paper's support s).
    pub support: usize,
    /// Slots where the test was positive in both directions (p).
    pub positives: usize,
    /// `positives / support` (0 when support is 0).
    pub pr: f64,
    /// Final decision under the thresholds.
    pub dependent: bool,
}

/// Result of an L1 run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct L1Result {
    /// Pairs declared dependent.
    pub detected: PairModel,
    /// Per-pair detail for every pair that had non-zero support.
    pub outcomes: Vec<PairOutcome>,
    /// Number of slots the range was split into (n).
    pub n_slots: usize,
}

/// Runs technique L1 on `range`, considering the given candidate
/// sources (pass `store.active_sources()` for "everything"). Thread
/// count comes from [`ParConfig::default`] (`LOGDEP_THREADS` or the
/// hardware); results are bit-identical at every thread count.
pub fn run_l1(
    store: &LogStore,
    range: TimeRange,
    sources: &[SourceId],
    cfg: &L1Config,
) -> crate::Result<L1Result> {
    run_l1_pool(store, range, sources, cfg, &ParConfig::default())
}

/// [`run_l1`] with an explicit worker-pool configuration.
pub fn run_l1_pool(
    store: &LogStore,
    range: TimeRange,
    sources: &[SourceId],
    cfg: &L1Config,
    par: &ParConfig,
) -> crate::Result<L1Result> {
    cfg.validate()?;
    let slots = range.split(cfg.slot_ms);
    run_l1_slots_pool(store, &slots, sources, cfg, par)
}

/// Runs technique L1 over an explicit slot list — the entry point for
/// the adaptive-slot variant (§5 of the paper; see [`super::adaptive`]).
pub fn run_l1_slots(
    store: &LogStore,
    slots: &[TimeRange],
    sources: &[SourceId],
    cfg: &L1Config,
) -> crate::Result<L1Result> {
    run_l1_slots_pool(store, slots, sources, cfg, &ParConfig::default())
}

/// [`run_l1_slots`] with an explicit worker-pool configuration.
///
/// Slots are independent by construction (every RNG stream is seeded
/// from `(seed, slot token, source)` alone, where the token depends on
/// the slot's *absolute position*, not its enumeration index — see
/// [`slot_token`]), so the (pair × slot) distance tests fan out per
/// slot on the pool and the per-slot evidence is merged by counting in
/// canonical slot-then-pair order — the exact accumulation the serial
/// loop performs.
pub fn run_l1_slots_pool(
    store: &LogStore,
    slots: &[TimeRange],
    sources: &[SourceId],
    cfg: &L1Config,
    par: &ParConfig,
) -> crate::Result<L1Result> {
    cfg.validate()?;

    // Fan out: one independent evidence computation per slot.
    let tokened: Vec<(u64, TimeRange)> = slots
        .iter()
        .map(|&slot| (slot_token(slot, cfg.slot_ms), slot))
        .collect();
    let per_slot: Vec<Vec<(usize, usize, bool)>> = par_map(par, &tokened, |&(token, slot)| {
        slot_evidence(store, token, slot, sources, cfg)
    });

    Ok(combine_evidence(&per_slot, sources, cfg, slots.len()))
}

/// Merges per-slot evidence into the final [`L1Result`]: pair
/// accumulators indexed by (i, j) position in `sources`, summed in slot
/// order (addition is order-free, so this equals the serial
/// accumulation bit for bit), then thresholded per §3.1.
pub(crate) fn combine_evidence(
    per_slot: &[Vec<(usize, usize, bool)>],
    sources: &[SourceId],
    cfg: &L1Config,
    n_slots: usize,
) -> L1Result {
    let k = sources.len();
    let mut support = vec![0u32; k * k];
    let mut positives = vec![0u32; k * k];
    for evidence in per_slot {
        for &(i, j, positive) in evidence {
            support[i * k + j] += 1;
            if positive {
                positives[i * k + j] += 1;
            }
        }
    }

    let mut detected = PairModel::new();
    let mut outcomes = Vec::new();
    let min_support = (cfg.th_s * n_slots as f64).ceil().max(1.0) as u32;
    for i in 0..k {
        for j in (i + 1)..k {
            let s = support[i * k + j];
            if s == 0 {
                continue;
            }
            let p = positives[i * k + j];
            let pr = p as f64 / s as f64;
            let dependent = pr >= cfg.th_pr && s >= min_support;
            if dependent {
                detected.insert(sources[i], sources[j]);
            }
            outcomes.push(PairOutcome {
                a: sources[i].min(sources[j]),
                b: sources[i].max(sources[j]),
                support: s as usize,
                positives: p as usize,
                pr,
                dependent,
            });
        }
    }

    L1Result {
        detected,
        outcomes,
        n_slots,
    }
}

/// Maximum absolute jitter (ms) applied to load-proportional reference
/// picks — the evidence of a slot can therefore consult timestamps up
/// to this far outside it (plus one neighbor on each side), which is
/// exactly the neighborhood the cache digests.
pub(crate) const LOAD_JITTER_MS: i64 = 2_000;

/// RNG-stream token of a slot, *translation-invariant*: a slot keeps
/// its token (hence its streams, hence its evidence) when the analysis
/// window slides — the property the slot-evidence cache rests on. A
/// slot aligned to the configured width gets its absolute index on the
/// global slot grid; for ranges starting at 0 this equals the old
/// enumeration index, preserving historical outputs bit for bit.
/// Unaligned slots (the adaptive variant) get a mixed start token with
/// the top bit set, keeping the two families disjoint.
pub(crate) fn slot_token(slot: TimeRange, slot_ms: i64) -> u64 {
    if slot_ms > 0 && slot.start.0.rem_euclid(slot_ms) == 0 {
        slot.start.0.div_euclid(slot_ms) as u64
    } else {
        mix64(slot.start.0 as u64) | (1 << 63)
    }
}

/// SplitMix64 finalizer: spreads unaligned slot starts over the token
/// space so nearby starts get unrelated RNG streams.
fn mix64(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Evidence of one slot: `(i, j, positive)` per pair (positions in
/// `sources`, `i < j`) where both sides cleared `minlogs`. Pure in
/// `(token, slot)` — every RNG stream is seeded per (seed, slot token,
/// source) — so slots can be evaluated in any order or concurrently,
/// and identical `(token, slot, timelines)` inputs always reproduce
/// identical evidence (the cache-correctness invariant).
pub(crate) fn slot_evidence(
    store: &LogStore,
    token: u64,
    slot: TimeRange,
    sources: &[SourceId],
    cfg: &L1Config,
) -> Vec<(usize, usize, bool)> {
    let k = sources.len();
    // Sources active enough in this slot.
    let active: Vec<usize> = (0..k)
        .filter(|&i| store.timeline(sources[i]).count_in(slot) >= cfg.minlogs)
        .collect();
    if active.len() < 2 {
        return Vec::new();
    }

    // Random-side samples per active source (role A), shared across
    // partners. Seeded per (seed, slot token, source) for
    // reproducibility independent of iteration order.
    let mut random_sides: Vec<Option<DistanceSamples>> = Vec::with_capacity(active.len());
    for &i in &active {
        let mut sampler = Sampler::from_seed(cfg.seed ^ token << 20 ^ sources[i].0 as u64);
        let side = match cfg.reference {
            ReferenceProcess::Homogeneous => {
                random_side(store.timeline(sources[i]), slot, cfg, &mut sampler)
            }
            ReferenceProcess::LoadProportional => {
                // Sample comparison points from the *overall* log
                // process (jittered), so shared diurnal structure
                // cancels out of the comparison (§5).
                let pool = store.range(slot);
                let picks: Vec<Millis> = (0..cfg.sample_size)
                    .filter(|_| !pool.is_empty())
                    .map(|_| {
                        let r = &pool[sampler.index(pool.len())];
                        let jitter =
                            (sampler.unit() * (2 * LOAD_JITTER_MS) as f64) as i64 - LOAD_JITTER_MS;
                        Millis(r.client_ts.0 + jitter)
                    })
                    .collect();
                side_from_points(store.timeline(sources[i]), &picks, cfg)
            }
        };
        random_sides.push(side);
    }

    let mut evidence = Vec::new();
    for (ai, &i) in active.iter().enumerate() {
        for (bi, &j) in active.iter().enumerate() {
            if bi <= ai {
                continue;
            }
            // Direction 1: is B attracted to A?
            let pos_ab = match &random_sides[ai] {
                Some(r) => {
                    let a_tl = store.timeline(sources[i]);
                    let b_slot = store.timeline(sources[j]).slice_in(slot);
                    let mut sampler = Sampler::from_seed(
                        cfg.seed
                            ^ 0x0b51de
                            ^ token << 24
                            ^ (sources[i].0 as u64) << 12
                            ^ sources[j].0 as u64,
                    );
                    b_side(a_tl, b_slot, cfg, &mut sampler)
                        .map(|b| decide(&b, r, cfg))
                        .unwrap_or(false)
                }
                None => false,
            };
            // Direction 2: is A attracted to B? (only if needed)
            let pos_both = pos_ab
                && match &random_sides[bi] {
                    Some(r) => {
                        let b_tl = store.timeline(sources[j]);
                        let a_slot = store.timeline(sources[i]).slice_in(slot);
                        let mut sampler = Sampler::from_seed(
                            cfg.seed
                                ^ 0x0b51de
                                ^ token << 24
                                ^ (sources[j].0 as u64) << 12
                                ^ sources[i].0 as u64,
                        );
                        b_side(b_tl, a_slot, cfg, &mut sampler)
                            .map(|b| decide(&b, r, cfg))
                            .unwrap_or(false)
                    }
                    None => false,
                };
            evidence.push((i, j, pos_both));
        }
    }
    evidence
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::time::MS_PER_HOUR;
    use logdep_logstore::{LogRecord, Millis};

    /// Builds a store with three apps: 0 and 1 interact (1 echoes 0
    /// with a 40 ms lag), 2 is independent.
    fn coupled_store(hours: i64) -> (LogStore, Vec<SourceId>) {
        let mut store = LogStore::new();
        let s0 = store.registry.source("App0");
        let s1 = store.registry.source("App1");
        let s2 = store.registry.source("App2");
        for h in 0..hours {
            let base = h * MS_PER_HOUR;
            for i in 0..150 {
                let t = base + i * 23_000 % MS_PER_HOUR;
                store.push(LogRecord::minimal(s0, Millis(t)));
                store.push(LogRecord::minimal(s1, Millis(t + 40)));
                // App2 on its own deterministic grid.
                store.push(LogRecord::minimal(
                    s2,
                    Millis(base + (i * 21_557 + 7_919) % MS_PER_HOUR),
                ));
            }
        }
        store.finalize();
        (store, vec![s0, s1, s2])
    }

    fn cfg() -> L1Config {
        L1Config {
            minlogs: 50,
            seed: 5,
            ..L1Config::default()
        }
    }

    #[test]
    fn detects_the_coupled_pair_only() {
        let (store, sources) = coupled_store(6);
        let range = TimeRange::new(Millis(0), Millis(6 * MS_PER_HOUR));
        let res = run_l1(&store, range, &sources, &cfg()).unwrap();
        assert_eq!(res.n_slots, 6);
        assert!(
            res.detected.contains(sources[0], sources[1]),
            "coupled pair missed: {:?}",
            res.outcomes
        );
        assert!(!res.detected.contains(sources[0], sources[2]));
        assert!(!res.detected.contains(sources[1], sources[2]));
    }

    #[test]
    fn outcomes_report_support_and_pr() {
        let (store, sources) = coupled_store(4);
        let range = TimeRange::new(Millis(0), Millis(4 * MS_PER_HOUR));
        let res = run_l1(&store, range, &sources, &cfg()).unwrap();
        let out = res
            .outcomes
            .iter()
            .find(|o| o.a == sources[0] && o.b == sources[1])
            .expect("pair tested");
        assert_eq!(out.support, 4);
        assert!(out.pr > 0.9, "pr = {}", out.pr);
        assert!(out.dependent);
    }

    #[test]
    fn minlogs_filter_suppresses_sparse_apps() {
        let (store, sources) = coupled_store(2);
        let range = TimeRange::new(Millis(0), Millis(2 * MS_PER_HOUR));
        let strict = L1Config {
            minlogs: 10_000, // nobody qualifies
            ..cfg()
        };
        let res = run_l1(&store, range, &sources, &strict).unwrap();
        assert!(res.detected.is_empty());
        assert!(res.outcomes.is_empty(), "no pair should have support");
    }

    #[test]
    fn support_threshold_blocks_low_support_pairs() {
        // Data in only 1 of 24 slots → support 1/24 < th_s = 0.3.
        let (store, sources) = coupled_store(1);
        let range = TimeRange::new(Millis(0), Millis(24 * MS_PER_HOUR));
        let res = run_l1(&store, range, &sources, &cfg()).unwrap();
        assert_eq!(res.n_slots, 24);
        assert!(res.detected.is_empty(), "support gate failed");
        let out = res
            .outcomes
            .iter()
            .find(|o| o.a == sources[0] && o.b == sources[1])
            .expect("tested once");
        assert_eq!(out.support, 1);
        assert!(!out.dependent);
    }

    #[test]
    fn deterministic_across_runs() {
        let (store, sources) = coupled_store(3);
        let range = TimeRange::new(Millis(0), Millis(3 * MS_PER_HOUR));
        let r1 = run_l1(&store, range, &sources, &cfg()).unwrap();
        let r2 = run_l1(&store, range, &sources, &cfg()).unwrap();
        assert_eq!(r1, r2);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let (store, sources) = coupled_store(1);
        let range = TimeRange::new(Millis(0), Millis(MS_PER_HOUR));
        let bad = L1Config {
            th_pr: 2.0,
            ..L1Config::default()
        };
        assert!(run_l1(&store, range, &sources, &bad).is_err());
    }

    #[test]
    fn empty_sources_yield_empty_result() {
        let (store, _) = coupled_store(1);
        let range = TimeRange::new(Millis(0), Millis(MS_PER_HOUR));
        let res = run_l1(&store, range, &[], &cfg()).unwrap();
        assert!(res.detected.is_empty());
        assert!(res.outcomes.is_empty());
    }
}
