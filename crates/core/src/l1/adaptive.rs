//! Adaptive time slots (§5 of the paper).
//!
//! Fixed one-hour slots are a compromise: too long during load
//! transitions (the diurnal confounder leaks in), needlessly short
//! during stable periods (support is wasted). The paper proposes to
//! "create time slots adaptively by measuring the degree of
//! stationarity with existing statistical tests" — implemented here as
//! recursive bisection: a segment is split while the total log counts
//! of its two halves differ significantly under a two-sided binomial
//! test (under stationarity the split is a fair coin per log).
//!
//! Feed the result to [`run_l1_slots`].
//!
//! [`run_l1_slots`]: super::run_l1_slots

use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, Millis};
use logdep_stats::binomial;
use serde::{Deserialize, Serialize};

/// Parameters of adaptive slotting.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Significance level of the half/half stationarity test.
    pub alpha: f64,
    /// Segments at or below this width are never split further.
    pub min_slot_ms: i64,
    /// Segments above this width are always split (caps slot length so
    /// the support statistic keeps meaning).
    pub max_slot_ms: i64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            alpha: 0.01,
            min_slot_ms: 15 * 60 * 1_000,     // 15 minutes
            max_slot_ms: 4 * 60 * 60 * 1_000, // 4 hours
        }
    }
}

impl AdaptiveConfig {
    fn validate(&self) -> crate::Result<()> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(crate::MineError::InvalidConfig {
                name: "alpha",
                reason: format!("{} outside (0, 1)", self.alpha),
            });
        }
        if self.min_slot_ms <= 0 || self.max_slot_ms < self.min_slot_ms {
            return Err(crate::MineError::InvalidConfig {
                name: "min_slot_ms/max_slot_ms",
                reason: "need 0 < min ≤ max".into(),
            });
        }
        Ok(())
    }
}

/// Splits `range` into slots that are locally stationary in overall
/// log volume. Returns at least one slot.
pub fn adaptive_slots(
    store: &LogStore,
    range: TimeRange,
    cfg: &AdaptiveConfig,
) -> crate::Result<Vec<TimeRange>> {
    cfg.validate()?;
    let mut out = Vec::new();
    split(store, range, cfg, &mut out);
    Ok(out)
}

fn split(store: &LogStore, seg: TimeRange, cfg: &AdaptiveConfig, out: &mut Vec<TimeRange>) {
    let width = seg.len_ms();
    if width <= cfg.min_slot_ms {
        out.push(seg);
        return;
    }
    let mid = Millis(seg.start.0 + width / 2);
    let left = TimeRange::new(seg.start, mid);
    let right = TimeRange::new(mid, seg.end);
    let must_split = width > cfg.max_slot_ms;
    if must_split || !is_stationary(store, left, right, cfg.alpha) {
        split(store, left, cfg, out);
        split(store, right, cfg, out);
    } else {
        out.push(seg);
    }
}

/// Two-sided binomial test: under stationarity each log lands in the
/// left half with probability ½.
fn is_stationary(store: &LogStore, left: TimeRange, right: TimeRange, alpha: f64) -> bool {
    let n_left = store.range(left).len() as u64;
    let n_right = store.range(right).len() as u64;
    let n = n_left + n_right;
    if n < 20 {
        return true; // too little volume to see non-stationarity
    }
    let k = n_left.min(n_right);
    let p = 2.0 * binomial::cdf(n, 0.5, k).unwrap_or(1.0);
    p.min(1.0) > alpha
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::LogRecord;

    fn store_with_rates(segments: &[(i64, i64, i64)]) -> LogStore {
        // (start_ms, end_ms, period_ms): one log every `period`.
        let mut s = LogStore::new();
        let src = s.registry.source("App");
        for &(start, end, period) in segments {
            let mut t = start;
            while t < end {
                s.push(LogRecord::minimal(src, Millis(t)));
                t += period;
            }
        }
        s.finalize();
        s
    }

    const HOUR: i64 = 3_600_000;

    #[test]
    fn stationary_period_stays_one_slot() {
        let store = store_with_rates(&[(0, 4 * HOUR, 10_000)]);
        let cfg = AdaptiveConfig::default();
        let slots =
            adaptive_slots(&store, TimeRange::new(Millis(0), Millis(4 * HOUR)), &cfg).unwrap();
        assert_eq!(slots.len(), 1, "uniform rate should not split: {slots:?}");
    }

    #[test]
    fn rate_change_forces_a_split() {
        // Quiet first two hours, 20× busier last two.
        let store = store_with_rates(&[(0, 2 * HOUR, 60_000), (2 * HOUR, 4 * HOUR, 3_000)]);
        let cfg = AdaptiveConfig::default();
        let slots =
            adaptive_slots(&store, TimeRange::new(Millis(0), Millis(4 * HOUR)), &cfg).unwrap();
        assert!(slots.len() >= 2, "rate change not detected: {slots:?}");
        // Slots tile the range exactly.
        assert_eq!(slots[0].start, Millis(0));
        assert_eq!(slots.last().unwrap().end, Millis(4 * HOUR));
        for w in slots.windows(2) {
            assert_eq!(w[0].end, w[1].start, "gap or overlap in slots");
        }
    }

    #[test]
    fn min_slot_floor_is_respected() {
        // Wild rates everywhere, but slots never drop below the floor.
        let store = store_with_rates(&[
            (0, HOUR / 2, 1_000),
            (HOUR / 2, HOUR, 30_000),
            (HOUR, 2 * HOUR, 2_000),
        ]);
        let cfg = AdaptiveConfig {
            min_slot_ms: 30 * 60 * 1_000,
            ..AdaptiveConfig::default()
        };
        let slots =
            adaptive_slots(&store, TimeRange::new(Millis(0), Millis(2 * HOUR)), &cfg).unwrap();
        for s in &slots {
            assert!(
                s.len_ms() >= cfg.min_slot_ms / 2,
                "slot far below floor: {s:?}"
            );
        }
    }

    #[test]
    fn max_slot_cap_splits_even_stationary_ranges() {
        let store = store_with_rates(&[(0, 12 * HOUR, 10_000)]);
        let cfg = AdaptiveConfig {
            max_slot_ms: 2 * HOUR,
            ..AdaptiveConfig::default()
        };
        let slots =
            adaptive_slots(&store, TimeRange::new(Millis(0), Millis(12 * HOUR)), &cfg).unwrap();
        assert!(slots.len() >= 6);
        for s in &slots {
            assert!(s.len_ms() <= 2 * HOUR);
        }
    }

    #[test]
    fn empty_store_is_one_slot() {
        let mut store = LogStore::new();
        store.finalize();
        let slots = adaptive_slots(
            &store,
            TimeRange::new(Millis(0), Millis(2 * HOUR)),
            &AdaptiveConfig::default(),
        )
        .unwrap();
        assert_eq!(slots.len(), 1);
    }

    #[test]
    fn invalid_config_rejected() {
        let mut store = LogStore::new();
        store.finalize();
        let bad = AdaptiveConfig {
            alpha: 0.0,
            ..AdaptiveConfig::default()
        };
        assert!(adaptive_slots(&store, TimeRange::day(0), &bad).is_err());
        let bad = AdaptiveConfig {
            min_slot_ms: 100,
            max_slot_ms: 50,
            alpha: 0.05,
        };
        assert!(adaptive_slots(&store, TimeRange::day(0), &bad).is_err());
    }

    #[test]
    fn adaptive_slots_feed_run_l1() {
        use crate::l1::{run_l1_slots, L1Config};
        // Two coupled apps over six hours with a busy second half.
        let mut store = LogStore::new();
        let a = store.registry.source("A");
        let b = store.registry.source("B");
        for h in 0..6i64 {
            let period = if h < 3 { 40_000 } else { 8_000 };
            let mut t = h * HOUR;
            while t < (h + 1) * HOUR {
                store.push(LogRecord::minimal(a, Millis(t)));
                store.push(LogRecord::minimal(b, Millis(t + 35)));
                t += period;
            }
        }
        store.finalize();
        let range = TimeRange::new(Millis(0), Millis(6 * HOUR));
        let slots = adaptive_slots(&store, range, &AdaptiveConfig::default()).unwrap();
        assert!(slots.len() >= 2);
        let cfg = L1Config {
            minlogs: 30,
            seed: 2,
            ..L1Config::default()
        };
        let res = run_l1_slots(&store, &slots, &[a, b], &cfg).unwrap();
        assert!(res.detected.contains(a, b), "coupled pair missed: {res:?}");
    }
}
