//! Combining the three techniques' evidence.
//!
//! §4.10 of the paper picks L3 as "the" HUG solution, but §5's
//! discussion makes clear the techniques are complements, not rivals:
//! L3 needs a directory, L2 needs session context, L1 works on
//! anything. A deployment that has all three can *vote*. This module
//! scores every candidate pair by which techniques support it; the
//! agreement level is a confidence signal (pairs found by several
//! independent information sources are very unlikely to be noise) and
//! the disagreement pattern is a diagnosis aid (L3-only → citation
//! without activity coupling; L1-only → correlation without a
//! session/citation trace, often transitive).

use crate::model::PairModel;
use logdep_logstore::SourceId;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Which techniques supported a pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct Support {
    /// Technique L1 (activity correlation) found the pair.
    pub l1: bool,
    /// Technique L2 (session co-occurrence) found the pair.
    pub l2: bool,
    /// Technique L3 (directory citations, mapped to app pairs) found it.
    pub l3: bool,
}

impl Support {
    /// Number of supporting techniques (0–3).
    pub fn votes(&self) -> u8 {
        self.l1 as u8 + self.l2 as u8 + self.l3 as u8
    }
}

fn all_available() -> [bool; 3] {
    [true; 3]
}

/// The combined model: per-pair support plus threshold views.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ensemble {
    support: BTreeMap<(SourceId, SourceId), Support>,
    /// Which detectors contributed (`[l1, l2, l3]`). A degraded run —
    /// one detector erroring out — still produces a usable ensemble;
    /// threshold views can rescale against the detectors that ran.
    #[serde(default = "all_available")]
    available: [bool; 3],
}

impl Default for Ensemble {
    fn default() -> Self {
        Self {
            support: BTreeMap::new(),
            available: all_available(),
        }
    }
}

impl Ensemble {
    /// Combines the three technique outputs (L3 must already be mapped
    /// onto application pairs via the service-owner relation).
    pub fn combine(l1: &PairModel, l2: &PairModel, l3_pairs: &PairModel) -> Self {
        Self::combine_partial(Some(l1), Some(l2), Some(l3_pairs))
    }

    /// Combines whatever detector outputs are present — the degraded
    /// path. A `None` marks a detector that did not run (crashed, or
    /// its prerequisite data was missing); its vote is neither counted
    /// nor held against any pair.
    pub fn combine_partial(
        l1: Option<&PairModel>,
        l2: Option<&PairModel>,
        l3_pairs: Option<&PairModel>,
    ) -> Self {
        let mut support: BTreeMap<(SourceId, SourceId), Support> = BTreeMap::new();
        if let Some(m) = l1 {
            for p in m.iter() {
                support.entry(p).or_default().l1 = true;
            }
        }
        if let Some(m) = l2 {
            for p in m.iter() {
                support.entry(p).or_default().l2 = true;
            }
        }
        if let Some(m) = l3_pairs {
            for p in m.iter() {
                support.entry(p).or_default().l3 = true;
            }
        }
        Self {
            support,
            available: [l1.is_some(), l2.is_some(), l3_pairs.is_some()],
        }
    }

    /// Which detectors contributed, as `[l1, l2, l3]`.
    pub fn available(&self) -> [bool; 3] {
        self.available
    }

    /// Number of detectors that contributed (0–3).
    pub fn n_available(&self) -> u8 {
        self.available.iter().map(|&a| a as u8).sum()
    }

    /// Pairs supported by at least `min_votes_of_three` techniques,
    /// with the threshold rescaled to the detectors that actually ran:
    /// a 2-of-3 consensus becomes 2-of-2 when one detector is down
    /// (`ceil(min · available / 3)`, floored at 1). With all three
    /// available this is exactly [`Ensemble::at_least`].
    pub fn at_least_rescaled(&self, min_votes_of_three: u8) -> PairModel {
        let avail = self.n_available();
        if avail == 0 {
            return PairModel::new();
        }
        let scaled = (min_votes_of_three * avail).div_ceil(3).max(1);
        self.at_least(scaled)
    }

    /// Support record for a pair (order-insensitive).
    pub fn support(&self, a: SourceId, b: SourceId) -> Support {
        self.support
            .get(&(a.min(b), a.max(b)))
            .copied()
            .unwrap_or_default()
    }

    /// Pairs supported by at least `min_votes` techniques.
    pub fn at_least(&self, min_votes: u8) -> PairModel {
        self.support
            .iter()
            .filter(|(_, s)| s.votes() >= min_votes)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Pairs supported by *exactly* the given combination — the
    /// disagreement views (`only_l1`, etc.).
    pub fn exactly(&self, l1: bool, l2: bool, l3: bool) -> PairModel {
        self.support
            .iter()
            .filter(|(_, s)| s.l1 == l1 && s.l2 == l2 && s.l3 == l3)
            .map(|(&p, _)| p)
            .collect()
    }

    /// Iterates all pairs with their support.
    pub fn iter(&self) -> impl Iterator<Item = ((SourceId, SourceId), Support)> + '_ {
        self.support.iter().map(|(&p, &s)| (p, s))
    }

    /// Number of distinct pairs any technique proposed.
    pub fn len(&self) -> usize {
        self.support.len()
    }

    /// True when no technique proposed anything.
    pub fn is_empty(&self) -> bool {
        self.support.is_empty()
    }

    /// Vote histogram: `counts[v]` = pairs with exactly `v` votes
    /// (index 0 unused; it is always 0 by construction).
    pub fn vote_histogram(&self) -> [usize; 4] {
        let mut h = [0usize; 4];
        for s in self.support.values() {
            h[s.votes() as usize] += 1;
        }
        h
    }
}

/// Maps an app→service model onto application pairs via the
/// service-owner relation (`owners[i]` implements service `i`),
/// dropping self-pairs — the bridge that lets L3 vote alongside L1/L2.
pub fn app_service_to_pairs(
    model: &crate::model::AppServiceModel,
    owners: &[SourceId],
) -> PairModel {
    let mut pairs = PairModel::new();
    for (app, svc) in model.iter() {
        if let Some(&owner) = owners.get(svc) {
            pairs.insert(app, owner);
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(i: u32) -> SourceId {
        SourceId(i)
    }

    fn model(pairs: &[(u32, u32)]) -> PairModel {
        pairs.iter().map(|&(a, b)| (s(a), s(b))).collect()
    }

    #[test]
    fn votes_accumulate_per_pair() {
        let e = Ensemble::combine(
            &model(&[(1, 2), (1, 3)]),
            &model(&[(1, 2), (2, 3)]),
            &model(&[(1, 2)]),
        );
        assert_eq!(e.len(), 3);
        assert_eq!(e.support(s(1), s(2)).votes(), 3);
        assert_eq!(e.support(s(2), s(1)).votes(), 3, "order-insensitive");
        assert_eq!(e.support(s(1), s(3)).votes(), 1);
        assert_eq!(e.support(s(9), s(8)).votes(), 0);
        assert_eq!(e.vote_histogram(), [0, 2, 0, 1]);
    }

    #[test]
    fn threshold_views() {
        let e = Ensemble::combine(
            &model(&[(1, 2), (1, 3)]),
            &model(&[(1, 2), (2, 3)]),
            &model(&[(1, 2), (2, 3)]),
        );
        assert_eq!(e.at_least(1).len(), 3);
        assert_eq!(e.at_least(2).len(), 2);
        assert_eq!(e.at_least(3).len(), 1);
        assert!(e.at_least(3).contains(s(1), s(2)));
        // Exact-combination views.
        let l1_only = e.exactly(true, false, false);
        assert_eq!(l1_only.len(), 1);
        assert!(l1_only.contains(s(1), s(3)));
        assert!(e.exactly(false, true, true).contains(s(2), s(3)));
    }

    #[test]
    fn app_service_mapping_drops_self_pairs() {
        let mut asm = crate::model::AppServiceModel::new();
        asm.insert(s(0), 0); // owned by 5
        asm.insert(s(0), 1); // owned by 0 (self)
        asm.insert(s(1), 0);
        let owners = vec![s(5), s(0)];
        let pairs = app_service_to_pairs(&asm, &owners);
        assert_eq!(pairs.len(), 2);
        assert!(pairs.contains(s(0), s(5)));
        assert!(pairs.contains(s(1), s(5)));
    }

    #[test]
    fn partial_combine_tracks_availability() {
        let e = Ensemble::combine_partial(
            Some(&model(&[(1, 2), (1, 3)])),
            None,
            Some(&model(&[(1, 2)])),
        );
        assert_eq!(e.available(), [true, false, true]);
        assert_eq!(e.n_available(), 2);
        assert_eq!(e.support(s(1), s(2)).votes(), 2);
        // Full combine is the all-available special case.
        let full = Ensemble::combine(&PairModel::new(), &PairModel::new(), &PairModel::new());
        assert_eq!(full.n_available(), 3);
    }

    #[test]
    fn rescaled_threshold_adapts_to_missing_detectors() {
        // L2 down: (1,2) has 2/2 votes, (1,3) and (2,3) one each.
        let e = Ensemble::combine_partial(
            Some(&model(&[(1, 2), (1, 3)])),
            None,
            Some(&model(&[(1, 2), (2, 3)])),
        );
        // "2-of-3 consensus" rescales to 2-of-2.
        assert_eq!(e.at_least_rescaled(2).len(), 1);
        assert!(e.at_least_rescaled(2).contains(s(1), s(2)));
        // "3-of-3 unanimity" also rescales to 2-of-2.
        assert_eq!(e.at_least_rescaled(3).len(), 1);
        // "any detector" stays any detector.
        assert_eq!(e.at_least_rescaled(1).len(), 3);

        // With all three available, rescaling is the identity.
        let full = Ensemble::combine(
            &model(&[(1, 2), (1, 3)]),
            &model(&[(1, 2), (2, 3)]),
            &model(&[(1, 2), (2, 3)]),
        );
        for v in 1..=3u8 {
            assert_eq!(full.at_least_rescaled(v), full.at_least(v));
        }

        // Single survivor: every threshold floors to 1-of-1.
        let solo = Ensemble::combine_partial(Some(&model(&[(1, 2)])), None, None);
        assert_eq!(solo.at_least_rescaled(3).len(), 1);

        // Nothing ran: empty model, no panic.
        let none = Ensemble::combine_partial(None, None, None);
        assert!(none.at_least_rescaled(2).is_empty());
    }

    #[test]
    fn empty_ensemble() {
        let e = Ensemble::combine(&PairModel::new(), &PairModel::new(), &PairModel::new());
        assert!(e.is_empty());
        assert_eq!(e.vote_histogram(), [0, 0, 0, 0]);
        assert!(e.at_least(1).is_empty());
    }
}
