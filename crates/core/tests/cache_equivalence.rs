//! Differential conformance of the evidence cache: cached mining ≡
//! batch mining, bit for bit, at every cache state.
//!
//! For each technique the canonical snapshot of the cached runner's
//! result is compared byte-for-byte against the batch runner's on the
//! same simulated landscape — cold (empty cache), warm (every entry
//! hits), after a surgical one-range invalidation, and after a JSON
//! persistence round trip. A one-day window advance must hit on every
//! interior day and still match a fresh-cache run exactly. Floats are
//! rendered with `{:?}` (shortest round trip), so even a last-ulp drift
//! from replaying cached evidence fails the test.

use logdep::cache::{l1_fingerprint, l2_fingerprint, l3_fingerprint, run_l1_cached, EvidenceCache};
use logdep::health::PipelineConfig;
use logdep::l1::{run_l1_pool, L1Config, L1Result};
use logdep::l2::{run_l2_pool, L2Config, L2Result};
use logdep::l3::{run_l3_pool, L3Config, L3Result};
use logdep::window::{run_l2_windowed_cached, run_l3_windowed_cached, run_window_cached};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR};
use logdep_logstore::{LogStore, Millis};
use logdep_par::ParConfig;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};
use std::fmt::Write as _;

const WIDTHS: [usize; 2] = [1, 4];

struct Landscape {
    store: LogStore,
    service_ids: Vec<String>,
}

fn landscape(days: u32) -> Landscape {
    let mut cfg = SimConfig::paper_week(11, 0.2);
    cfg.days = days;
    let out = simulate(&cfg);
    let service_ids = out.directory.ids().iter().map(|s| s.to_string()).collect();
    Landscape {
        store: out.store,
        service_ids,
    }
}

fn pool(threads: usize) -> ParConfig {
    ParConfig::with_threads(threads).expect("nonzero width")
}

fn l1_snapshot(res: &L1Result) -> String {
    let mut s = format!("n_slots {}\n", res.n_slots);
    for (a, b) in res.detected.iter() {
        let _ = writeln!(s, "edge {a:?} {b:?}");
    }
    for o in &res.outcomes {
        let _ = writeln!(
            s,
            "pair {:?} {:?} support {} positives {} pr {:?} dependent {}",
            o.a, o.b, o.support, o.positives, o.pr, o.dependent
        );
    }
    s
}

fn l2_snapshot(res: &L2Result) -> String {
    let mut s = String::new();
    for (a, b) in res.detected.iter() {
        let _ = writeln!(s, "edge {a:?} {b:?}");
    }
    for o in &res.outcomes {
        let _ = writeln!(
            s,
            "type {:?} {:?} joint {} stat {:?} p {:?} sig {}",
            o.first, o.second, o.joint, o.statistic, o.p_value, o.significant
        );
    }
    for (k, v) in res.bigrams.joint.iter() {
        let _ = writeln!(s, "joint {k:?} {v}");
    }
    for (k, v) in res.bigrams.first_margin.iter() {
        let _ = writeln!(s, "first {k:?} {v}");
    }
    for (k, v) in res.bigrams.second_margin.iter() {
        let _ = writeln!(s, "second {k:?} {v}");
    }
    let _ = writeln!(s, "total {}", res.bigrams.total);
    let _ = writeln!(s, "sessions {:?}", res.session_stats);
    s
}

fn l3_snapshot(res: &L3Result) -> String {
    let mut s = String::new();
    for (app, svc) in res.detected.iter() {
        let _ = writeln!(s, "dep {app:?} -> {svc}");
    }
    let mut cites: Vec<_> = res.citations.iter().collect();
    cites.sort();
    for ((app, svc), n) in cites {
        let _ = writeln!(s, "cite {app:?} {svc} {n}");
    }
    let _ = writeln!(
        s,
        "stopped {} scanned {}",
        res.stopped_logs, res.scanned_logs
    );
    s
}

fn l1_cfg() -> L1Config {
    L1Config {
        minlogs: 30,
        seed: 7,
        ..L1Config::default()
    }
}

fn l3_cfg() -> L3Config {
    L3Config::with_stop_patterns(standard_stop_patterns())
}

#[test]
fn l1_cached_matches_batch_cold_warm_and_after_invalidation() {
    let land = landscape(2);
    let sources = land.store.active_sources();
    let range = TimeRange::new(Millis(0), Millis::from_days(2));
    let cfg = l1_cfg();

    for threads in WIDTHS {
        let par = pool(threads);
        let batch = l1_snapshot(&run_l1_pool(&land.store, range, &sources, &cfg, &par).unwrap());

        let mut cache = EvidenceCache::new();
        let cold = run_l1_cached(&land.store, range, &sources, &cfg, &par, &mut cache).unwrap();
        assert_eq!(l1_snapshot(&cold), batch, "cold, threads {threads}");
        assert_eq!(cache.stats().l1_hits, 0);
        assert_eq!(cache.stats().l1_misses, 48);

        cache.reset_stats();
        let warm = run_l1_cached(&land.store, range, &sources, &cfg, &par, &mut cache).unwrap();
        assert_eq!(l1_snapshot(&warm), batch, "warm, threads {threads}");
        assert_eq!(cache.stats().l1_hits, 48);
        assert_eq!(cache.stats().l1_misses, 0);

        // Knock out one interior slot; only it may recompute, and the
        // combined result must not move a byte.
        cache.reset_stats();
        let hole = TimeRange::new(Millis(5 * MS_PER_HOUR), Millis(6 * MS_PER_HOUR));
        assert_eq!(cache.invalidate_overlapping(hole), 1);
        let patched = run_l1_cached(&land.store, range, &sources, &cfg, &par, &mut cache).unwrap();
        assert_eq!(l1_snapshot(&patched), batch, "patched, threads {threads}");
        assert_eq!(cache.stats().l1_hits, 47);
        assert_eq!(cache.stats().l1_misses, 1);
    }
}

#[test]
fn l1_cache_survives_json_round_trip() {
    let land = landscape(1);
    let sources = land.store.active_sources();
    let range = TimeRange::new(Millis(0), Millis::from_days(1));
    let cfg = l1_cfg();
    let par = pool(1);

    let mut cache = EvidenceCache::new();
    let first = run_l1_cached(&land.store, range, &sources, &cfg, &par, &mut cache).unwrap();
    let mut restored = EvidenceCache::from_json(&cache.to_json().unwrap()).unwrap();
    let replayed = run_l1_cached(&land.store, range, &sources, &cfg, &par, &mut restored).unwrap();
    assert_eq!(l1_snapshot(&replayed), l1_snapshot(&first));
    assert_eq!(restored.stats().l1_misses, 0, "round trip lost entries");
}

#[test]
fn l2_windowed_matches_batch_cold_and_warm() {
    let land = landscape(2);
    let range = TimeRange::new(Millis(0), Millis::from_days(2));
    let cfg = L2Config::default();

    for threads in WIDTHS {
        let batch = l2_snapshot(&run_l2_pool(&land.store, range, &cfg, &pool(threads)).unwrap());

        let mut cache = EvidenceCache::new();
        let cold = run_l2_windowed_cached(&land.store, range, &cfg, &mut cache).unwrap();
        assert_eq!(l2_snapshot(&cold), batch, "cold, threads {threads}");
        assert!(cache.stats().l2_misses >= 2);

        cache.reset_stats();
        let warm = run_l2_windowed_cached(&land.store, range, &cfg, &mut cache).unwrap();
        assert_eq!(l2_snapshot(&warm), batch, "warm, threads {threads}");
        assert_eq!(cache.stats().l2_misses, 0);
        assert!(cache.stats().l2_hits >= 2);
    }
}

#[test]
fn l3_windowed_matches_batch_cold_and_warm() {
    let land = landscape(2);
    let range = TimeRange::new(Millis(0), Millis::from_days(2));
    let cfg = l3_cfg();

    for threads in WIDTHS {
        let batch = l3_snapshot(
            &run_l3_pool(&land.store, range, &land.service_ids, &cfg, &pool(threads)).unwrap(),
        );

        let mut cache = EvidenceCache::new();
        let cold = run_l3_windowed_cached(&land.store, range, &land.service_ids, &cfg, &mut cache)
            .unwrap();
        assert_eq!(l3_snapshot(&cold), batch, "cold, threads {threads}");
        assert_eq!(cache.stats().l3_misses, 2);

        cache.reset_stats();
        let warm = run_l3_windowed_cached(&land.store, range, &land.service_ids, &cfg, &mut cache)
            .unwrap();
        assert_eq!(l3_snapshot(&warm), batch, "warm, threads {threads}");
        assert_eq!(cache.stats().l3_hits, 2);
        assert_eq!(cache.stats().l3_misses, 0);
    }
}

/// Asserts every fingerprint in `prints` is distinct — i.e. each config
/// mutation produced a different cache key. `labels[i]` names the field
/// mutated to produce `prints[i]`.
fn assert_all_distinct(labels: &[&str], prints: &[u64]) {
    for i in 0..prints.len() {
        for j in (i + 1)..prints.len() {
            assert_ne!(
                prints[i], prints[j],
                "fingerprint ignores a config change: `{}` vs `{}` collide",
                labels[i], labels[j]
            );
        }
    }
}

/// Every L1Config field must reach the fingerprint: a change in any one
/// of them (or in the source set) must produce a different cache key,
/// or the cache would replay evidence computed under the old setting.
/// The `fingerprint-completeness` lint proves every field is *read* by
/// the digest; this proves each read actually *moves* the hash.
#[test]
fn l1_fingerprint_reflects_every_config_field() {
    use logdep::l1::{CenterStat, DecisionRule, DistanceKind, ReferenceProcess};
    use logdep_logstore::SourceId;

    let base = L1Config::default();
    let sources = [SourceId(0), SourceId(1)];
    let variants: Vec<(&str, L1Config)> = vec![
        ("base", base.clone()),
        (
            "slot_ms",
            L1Config {
                slot_ms: 1_234,
                ..base.clone()
            },
        ),
        (
            "minlogs",
            L1Config {
                minlogs: 31,
                ..base.clone()
            },
        ),
        (
            "th_pr",
            L1Config {
                th_pr: 0.61,
                ..base.clone()
            },
        ),
        (
            "th_s",
            L1Config {
                th_s: 0.29,
                ..base.clone()
            },
        ),
        (
            "ci_level",
            L1Config {
                ci_level: 0.9,
                ..base.clone()
            },
        ),
        (
            "sample_size",
            L1Config {
                sample_size: 351,
                ..base.clone()
            },
        ),
        (
            "seed",
            L1Config {
                seed: 8,
                ..base.clone()
            },
        ),
        (
            "distance",
            L1Config {
                distance: DistanceKind::Next,
                ..base.clone()
            },
        ),
        (
            "stat",
            L1Config {
                stat: CenterStat::Mean,
                ..base.clone()
            },
        ),
        (
            "two_sided",
            L1Config {
                two_sided: !base.two_sided,
                ..base.clone()
            },
        ),
        (
            "reference",
            L1Config {
                reference: ReferenceProcess::LoadProportional,
                ..base.clone()
            },
        ),
        (
            "decision",
            L1Config {
                decision: DecisionRule::RankSum { alpha: 0.05 },
                ..base.clone()
            },
        ),
        (
            "retain_dists",
            L1Config {
                retain_dists: !base.retain_dists,
                ..base.clone()
            },
        ),
    ];
    let labels: Vec<&str> = variants.iter().map(|(l, _)| *l).collect();
    let prints: Vec<u64> = variants
        .iter()
        .map(|(_, cfg)| l1_fingerprint(cfg, &sources))
        .collect();
    assert_all_distinct(&labels, &prints);

    // The decision rule's embedded alpha must be folded too.
    assert_ne!(
        l1_fingerprint(
            &L1Config {
                decision: DecisionRule::RankSum { alpha: 0.05 },
                ..base.clone()
            },
            &sources
        ),
        l1_fingerprint(
            &L1Config {
                decision: DecisionRule::RankSum { alpha: 0.01 },
                ..base.clone()
            },
            &sources
        ),
        "RankSum alpha ignored"
    );
    // And so must the source set — identity and order.
    assert_ne!(
        l1_fingerprint(&base, &sources),
        l1_fingerprint(&base, &[SourceId(0)]),
        "source set ignored"
    );
}

#[test]
fn l2_fingerprint_reflects_every_config_field() {
    use logdep_sessions::SessionConfig;
    use logdep_stats::contingency::AssociationStatistic;

    let base = L2Config::default();
    let variants: Vec<(&str, L2Config)> = vec![
        ("base", base.clone()),
        (
            "timeout_ms",
            L2Config {
                timeout_ms: Some(9_999),
                ..base.clone()
            },
        ),
        (
            "alpha",
            L2Config {
                alpha: base.alpha / 2.0,
                ..base.clone()
            },
        ),
        (
            "statistic",
            L2Config {
                statistic: AssociationStatistic::Pearson,
                ..base.clone()
            },
        ),
        (
            "min_joint",
            L2Config {
                min_joint: base.min_joint + 1,
                ..base.clone()
            },
        ),
        (
            "session.max_gap_ms",
            L2Config {
                session: SessionConfig {
                    max_gap_ms: 7,
                    ..base.session
                },
                ..base.clone()
            },
        ),
        (
            "session.min_logs",
            L2Config {
                session: SessionConfig {
                    min_logs: base.session.min_logs + 1,
                    ..base.session
                },
                ..base.clone()
            },
        ),
    ];
    let labels: Vec<&str> = variants.iter().map(|(l, _)| *l).collect();
    let prints: Vec<u64> = variants
        .iter()
        .map(|(_, cfg)| l2_fingerprint(cfg))
        .collect();
    assert_all_distinct(&labels, &prints);
}

#[test]
fn l3_fingerprint_reflects_every_config_field() {
    let base = l3_cfg();
    let ids: Vec<String> = vec!["UPSRV".into(), "AUTH".into()];
    let mut fewer_patterns = base.clone();
    fewer_patterns.stop_patterns.pop();
    let variants: Vec<(&str, L3Config)> = vec![
        ("base", base.clone()),
        ("stop_patterns", fewer_patterns),
        (
            "whole_word",
            L3Config {
                whole_word: !base.whole_word,
                ..base.clone()
            },
        ),
        (
            "min_citations",
            L3Config {
                min_citations: base.min_citations + 1,
                ..base.clone()
            },
        ),
    ];
    let labels: Vec<&str> = variants.iter().map(|(l, _)| *l).collect();
    let prints: Vec<u64> = variants
        .iter()
        .map(|(_, cfg)| l3_fingerprint(cfg, &ids))
        .collect();
    assert_all_distinct(&labels, &prints);

    // The directory id set is part of the key as well.
    assert_ne!(
        l3_fingerprint(&base, &ids),
        l3_fingerprint(&base, &ids[..1]),
        "service id set ignored"
    );
}

/// The headline property: advancing a 3-day window by one day hits on
/// the shared days in every layer and still reproduces the fresh-cache
/// (hence batch) results byte for byte. The window spans 3 days so it
/// has a *true interior day* (day 2): L2 session buckets at the window
/// edges legitimately re-digest (the boundary clips their sessions),
/// but an interior day's bucket must be byte-stable across the slide.
#[test]
fn window_advance_hits_and_stays_byte_identical() {
    let land = landscape(4);
    let cfg = PipelineConfig {
        l1: Some(l1_cfg()),
        l2: Some(L2Config::default()),
        l3: Some(l3_cfg()),
        par: pool(4),
    };
    let w0 = TimeRange::new(Millis(0), Millis::from_days(3));
    let w1 = TimeRange::new(Millis::from_days(1), Millis::from_days(4));

    let mut rolling = EvidenceCache::new();
    run_window_cached(&land.store, w0, &land.service_ids, &cfg, &mut rolling).unwrap();
    let advanced =
        run_window_cached(&land.store, w1, &land.service_ids, &cfg, &mut rolling).unwrap();
    assert!(
        advanced.stats.l1_hits >= 48,
        "shared-day slots must hit: {:?}",
        advanced.stats
    );
    assert!(advanced.stats.l2_hits >= 1, "{:?}", advanced.stats);
    assert!(advanced.stats.l3_hits >= 2, "{:?}", advanced.stats);

    let mut fresh = EvidenceCache::new();
    let from_scratch =
        run_window_cached(&land.store, w1, &land.service_ids, &cfg, &mut fresh).unwrap();
    assert_eq!(
        l1_snapshot(advanced.l1.as_ref().unwrap()),
        l1_snapshot(from_scratch.l1.as_ref().unwrap())
    );
    assert_eq!(
        l2_snapshot(advanced.l2.as_ref().unwrap()),
        l2_snapshot(from_scratch.l2.as_ref().unwrap())
    );
    assert_eq!(
        l3_snapshot(advanced.l3.as_ref().unwrap()),
        l3_snapshot(from_scratch.l3.as_ref().unwrap())
    );

    // And the fresh-cache run matches the batch runners directly.
    let sources = land.store.active_sources();
    let batch_l1 = run_l1_pool(
        &land.store,
        w1,
        &sources,
        cfg.l1.as_ref().unwrap(),
        &cfg.par,
    );
    assert_eq!(
        l1_snapshot(from_scratch.l1.as_ref().unwrap()),
        l1_snapshot(&batch_l1.unwrap())
    );
    let batch_l2 = run_l2_pool(&land.store, w1, cfg.l2.as_ref().unwrap(), &cfg.par);
    assert_eq!(
        l2_snapshot(from_scratch.l2.as_ref().unwrap()),
        l2_snapshot(&batch_l2.unwrap())
    );
    let batch_l3 = run_l3_pool(
        &land.store,
        w1,
        &land.service_ids,
        cfg.l3.as_ref().unwrap(),
        &cfg.par,
    );
    assert_eq!(
        l3_snapshot(from_scratch.l3.as_ref().unwrap()),
        l3_snapshot(&batch_l3.unwrap())
    );
}
