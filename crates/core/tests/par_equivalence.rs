//! Differential conformance: parallel mining ≡ serial mining, bit for
//! bit.
//!
//! Runs the full L1 + L2 + L3 + ensemble pipeline over a seeded
//! simulated landscape at pool widths 1, 2, 3 and 8 and asserts that a
//! canonical serialization of every result — detected edge sets,
//! per-pair scores and confidence statistics, bigram contingency
//! tables, citation counts, orderings — is **byte-identical** to the
//! `threads = 1` baseline. The serial path is literally the plain
//! loop, so this pins the parallel engine to the reference semantics;
//! any scheduling leak (unordered merge, non-associative fold,
//! iteration-order dependence) shows up as a diff here.
//!
//! Floats are rendered with `{:?}` (shortest round-trip), so even a
//! last-ulp difference from a reordered accumulation fails the test.

use logdep::health::{run_pipeline, PipelineConfig, PipelineOutcome};
use logdep::l1::{run_l1_pool, L1Config, L1Result};
use logdep::l2::{run_l2_pool, L2Config, L2Result};
use logdep::l3::{run_l3_pool, L3Config, L3Result};
use logdep_logstore::time::TimeRange;
use logdep_logstore::{LogStore, Millis};
use logdep_par::ParConfig;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};
use std::fmt::Write as _;

const WIDTHS: [usize; 4] = [1, 2, 3, 8];

struct Landscape {
    store: LogStore,
    service_ids: Vec<String>,
    range: TimeRange,
}

fn landscape() -> Landscape {
    let mut cfg = SimConfig::paper_week(11, 0.2);
    cfg.days = 2;
    let out = simulate(&cfg);
    let service_ids = out.directory.ids().iter().map(|s| s.to_string()).collect();
    Landscape {
        store: out.store,
        service_ids,
        range: TimeRange::new(Millis(0), Millis::from_days(2)),
    }
}

fn l1_snapshot(res: &L1Result) -> String {
    let mut s = format!("n_slots {}\n", res.n_slots);
    for (a, b) in res.detected.iter() {
        let _ = writeln!(s, "edge {a:?} {b:?}");
    }
    for o in &res.outcomes {
        let _ = writeln!(
            s,
            "pair {:?} {:?} support {} positives {} pr {:?} dependent {}",
            o.a, o.b, o.support, o.positives, o.pr, o.dependent
        );
    }
    s
}

fn l2_snapshot(res: &L2Result) -> String {
    let mut s = String::new();
    for (a, b) in res.detected.iter() {
        let _ = writeln!(s, "edge {a:?} {b:?}");
    }
    for o in &res.outcomes {
        let _ = writeln!(
            s,
            "type {:?} {:?} joint {} stat {:?} p {:?} sig {}",
            o.first, o.second, o.joint, o.statistic, o.p_value, o.significant
        );
    }
    let mut joint: Vec<_> = res.bigrams.joint.iter().collect();
    joint.sort();
    for (k, v) in joint {
        let _ = writeln!(s, "joint {k:?} {v}");
    }
    let mut first: Vec<_> = res.bigrams.first_margin.iter().collect();
    first.sort();
    for (k, v) in first {
        let _ = writeln!(s, "first {k:?} {v}");
    }
    let mut second: Vec<_> = res.bigrams.second_margin.iter().collect();
    second.sort();
    for (k, v) in second {
        let _ = writeln!(s, "second {k:?} {v}");
    }
    let _ = writeln!(s, "total {}", res.bigrams.total);
    let _ = writeln!(s, "sessions {:?}", res.session_stats);
    s
}

fn l3_snapshot(res: &L3Result) -> String {
    let mut s = String::new();
    for (app, svc) in res.detected.iter() {
        let _ = writeln!(s, "dep {app:?} -> {svc}");
    }
    let mut cites: Vec<_> = res.citations.iter().collect();
    cites.sort();
    for ((app, svc), n) in cites {
        let _ = writeln!(s, "cite {app:?} {svc} {n}");
    }
    let _ = writeln!(
        s,
        "stopped {} scanned {}",
        res.stopped_logs, res.scanned_logs
    );
    s
}

/// Everything scientific in a pipeline outcome; the wall-clock field
/// of `DetectorHealth` is the one legitimate cross-run difference.
fn pipeline_snapshot(out: &PipelineOutcome) -> String {
    let mut s = String::new();
    for model in [&out.l1_pairs, &out.l2_pairs, &out.l3_pairs] {
        match model {
            Some(p) => {
                for (a, b) in p.iter() {
                    let _ = writeln!(s, "edge {a:?} {b:?}");
                }
            }
            None => s.push_str("absent\n"),
        }
    }
    if let Some(m) = &out.l3_deps {
        for (app, svc) in m.iter() {
            let _ = writeln!(s, "dep {app:?} -> {svc}");
        }
    }
    for ((a, b), support) in out.ensemble.iter() {
        let _ = writeln!(s, "vote {a:?} {b:?} {support:?}");
    }
    for h in &out.health {
        let _ = writeln!(
            s,
            "health {} ok={} enabled={} detected={} error={:?}",
            h.detector, h.ok, h.enabled, h.detected, h.error
        );
    }
    s
}

fn widths() -> impl Iterator<Item = (usize, ParConfig)> {
    WIDTHS
        .into_iter()
        .map(|n| (n, ParConfig::with_threads(n).expect("widths are >= 1")))
}

#[test]
fn l1_is_bit_identical_at_every_thread_count() {
    let land = landscape();
    let sources = land.store.active_sources();
    let cfg = L1Config {
        minlogs: 15,
        seed: 7,
        ..L1Config::default()
    };
    let mut baseline: Option<String> = None;
    for (n, par) in widths() {
        let res = run_l1_pool(&land.store, land.range, &sources, &cfg, &par).expect("l1 runs");
        assert!(!res.outcomes.is_empty(), "landscape produced L1 evidence");
        let snap = l1_snapshot(&res);
        match &baseline {
            None => baseline = Some(snap),
            Some(b) => assert_eq!(&snap, b, "L1 differs at {n} threads"),
        }
    }
}

#[test]
fn l2_is_bit_identical_at_every_thread_count() {
    let land = landscape();
    let cfg = L2Config::default();
    let mut baseline: Option<String> = None;
    for (n, par) in widths() {
        let res = run_l2_pool(&land.store, land.range, &cfg, &par).expect("l2 runs");
        assert!(res.bigrams.total > 0, "landscape produced bigrams");
        let snap = l2_snapshot(&res);
        match &baseline {
            None => baseline = Some(snap),
            Some(b) => assert_eq!(&snap, b, "L2 differs at {n} threads"),
        }
    }
}

#[test]
fn l3_is_bit_identical_at_every_thread_count() {
    let land = landscape();
    let cfg = L3Config::with_stop_patterns(standard_stop_patterns());
    let mut baseline: Option<String> = None;
    for (n, par) in widths() {
        let res =
            run_l3_pool(&land.store, land.range, &land.service_ids, &cfg, &par).expect("l3 runs");
        assert!(!res.detected.is_empty(), "landscape produced citations");
        let snap = l3_snapshot(&res);
        match &baseline {
            None => baseline = Some(snap),
            Some(b) => assert_eq!(&snap, b, "L3 differs at {n} threads"),
        }
    }
}

#[test]
fn full_pipeline_is_bit_identical_at_every_thread_count() {
    let land = landscape();
    let mut baseline: Option<String> = None;
    for (n, par) in widths() {
        let cfg = PipelineConfig {
            l1: Some(L1Config {
                minlogs: 15,
                seed: 7,
                ..L1Config::default()
            }),
            l2: Some(L2Config::default()),
            l3: Some(L3Config::with_stop_patterns(standard_stop_patterns())),
            par,
        };
        let out = run_pipeline(&land.store, land.range, &land.service_ids, None, &cfg);
        assert!(out.fully_healthy(), "health: {:?}", out.health);
        let snap = pipeline_snapshot(&out);
        match &baseline {
            None => baseline = Some(snap),
            Some(b) => assert_eq!(&snap, b, "pipeline differs at {n} threads"),
        }
    }
}
