//! Exhaustive crash-point sweep over the durable daily pipeline: kill
//! the run at *every* durable write K, in every crash mode, across a
//! week of window advances — and assert that a single `--resume`
//! converges to the uninterrupted run **byte for byte**: identical
//! L1/L2/L3 results, identical checkpoint file bytes, empty journal,
//! and a clean `verify` afterwards.
//!
//! The op count N is discovered with a counting policy (not hardcoded),
//! so adding or removing a durable write automatically widens or
//! narrows the sweep instead of silently leaving crash points untested.

use logdep::durable::{
    plan_signature, run_daily_durable, verify_store, DailyPlan, DailyReport, DurableError,
    DurableOp, NoopPolicy, WriteDecision, WritePolicy,
};
use logdep::health::PipelineConfig;
use logdep::l1::L1Config;
use logdep::l3::L3Config;
use logdep::window::WindowOutcome;
use logdep_faults::crash::{corrupt_bytes, Corruption, CrashPoint};
use logdep_logstore::time::MS_PER_HOUR;
use logdep_logstore::LogStore;
use logdep_par::ParConfig;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};
use std::path::PathBuf;

/// Counts durable writes without disturbing them — the N-discovery
/// pass of the sweep.
#[derive(Default)]
struct CountingPolicy {
    ops: Vec<DurableOp>,
}

impl WritePolicy for CountingPolicy {
    fn before_write(&mut self, op: DurableOp, _bytes: &[u8]) -> WriteDecision {
        self.ops.push(op);
        WriteDecision::Proceed
    }
}

/// Aborts at the Kth durable write, optionally leaving a deterministic
/// wreck (torn prefix / bit flip) of the in-flight bytes behind.
struct CrashPolicy {
    crash: CrashPoint,
    corruption: Option<Corruption>,
    seed: u64,
}

impl WritePolicy for CrashPolicy {
    fn before_write(&mut self, _op: DurableOp, bytes: &[u8]) -> WriteDecision {
        if self.crash.strike() {
            WriteDecision::Abort {
                partial: self
                    .corruption
                    .map(|kind| corrupt_bytes(bytes, kind, self.seed)),
            }
        } else {
            WriteDecision::Proceed
        }
    }
}

struct Landscape {
    store: LogStore,
    service_ids: Vec<String>,
}

fn landscape() -> Landscape {
    // The small topology keeps the ~36 full-week replays of the sweep
    // fast; the crash machinery is volume-independent.
    let mut cfg = SimConfig::small_test(11);
    cfg.days = 9;
    let out = simulate(&cfg);
    Landscape {
        service_ids: out.directory.ids().iter().map(|s| s.to_string()).collect(),
        store: out.store,
    }
}

/// Cheap-but-real pipeline: all three techniques enabled, L1 on
/// 4-hour slots with a small sample so the 30+ full-week replays of
/// the sweep stay fast. Thread width comes from `LOGDEP_THREADS`
/// (CI runs the sweep at 1 and 4).
fn pipeline_config() -> PipelineConfig {
    let mut cfg = PipelineConfig::all_defaults_with_par(ParConfig::default());
    cfg.l1 = Some(L1Config {
        slot_ms: 6 * MS_PER_HOUR,
        minlogs: 30,
        sample_size: 40,
        seed: 7,
        ..L1Config::default()
    });
    cfg.l3 = Some(L3Config::with_stop_patterns(standard_stop_patterns()));
    cfg
}

fn plan() -> DailyPlan {
    DailyPlan {
        start_day: 0,
        window_days: 2,
        advance_days: 1,
        steps: 7,
    }
}

fn fresh_store_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logdep-crash-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    for suffix in [
        "",
        ".journal",
        ".ledger",
        ".quarantine",
        ".tmp",
        ".journal.tmp",
    ] {
        let mut victim = path.as_os_str().to_os_string();
        victim.push(suffix);
        match std::fs::remove_file(&victim) {
            Ok(()) | Err(_) => {}
        }
    }
    path
}

fn run(
    land: &Landscape,
    path: &std::path::Path,
    resume: bool,
    policy: &mut dyn WritePolicy,
) -> Result<DailyReport, DurableError> {
    run_daily_durable(
        &land.store,
        &land.service_ids,
        &pipeline_config(),
        &plan(),
        path,
        resume,
        policy,
        &mut |_step, _outcome| {},
    )
}

/// The byte-identity surface: the mined results themselves. Cache
/// hit/miss stats legitimately differ between an interrupted and an
/// uninterrupted run, so they are excluded.
fn results_of(outcome: &WindowOutcome) -> String {
    format!("{:?}\n{:?}\n{:?}", outcome.l1, outcome.l2, outcome.l3)
}

fn journal_bytes(path: &std::path::Path) -> Vec<u8> {
    let mut j = path.as_os_str().to_os_string();
    j.push(".journal");
    std::fs::read(&j).unwrap_or_default()
}

#[test]
fn crash_sweep_recovers_byte_identically_across_a_week() {
    let land = landscape();

    // Uninterrupted reference run.
    let ref_path = fresh_store_path("reference.ck");
    let ref_report = run(&land, &ref_path, false, &mut NoopPolicy).expect("reference run");
    assert_eq!(ref_report.steps_run, 7);
    assert!(ref_report.store_health.ok, "{:?}", ref_report.events);
    let ref_results = results_of(&ref_report.final_outcome);
    let ref_bytes = std::fs::read(&ref_path).expect("reference checkpoint");
    assert!(
        journal_bytes(&ref_path).is_empty(),
        "reference left journal records"
    );

    // Discover the number of durable writes N (crash-point domain).
    let count_path = fresh_store_path("count.ck");
    let mut counter = CountingPolicy::default();
    run(&land, &count_path, false, &mut counter).expect("counting run");
    let n = counter.ops.len() as u64;
    assert!(
        counter
            .ops
            .iter()
            .filter(|&&op| op == DurableOp::JournalAppend)
            .count()
            == 7,
        "expected one journal append per step, got {:?}",
        counter.ops
    );
    assert!(
        n >= 10,
        "suspiciously few durable writes: {:?}",
        counter.ops
    );
    assert_eq!(
        std::fs::read(&count_path).expect("count checkpoint"),
        ref_bytes,
        "two uninterrupted runs disagree — determinism broken before any crash"
    );

    // The sweep: every crash point K, in clean-abort and wreck-leaving
    // modes. Every single one must recover exactly.
    let modes: [Option<Corruption>; 3] = [
        None,
        Some(Corruption::TornPrefix),
        Some(Corruption::BitFlip),
    ];
    for mode in modes {
        let mode_name = mode.map(Corruption::name).unwrap_or("clean-abort");
        for k in 1..=n {
            let path = fresh_store_path(&format!("crash-{mode_name}-{k}.ck"));
            let mut policy = CrashPolicy {
                crash: CrashPoint::at(k),
                corruption: mode,
                seed: 0x5eed ^ k,
            };
            match run(&land, &path, false, &mut policy) {
                Err(DurableError::Crashed { .. }) => {}
                Ok(_) => panic!("{mode_name}: crash point {k} of {n} never fired"),
                Err(e) => panic!("{mode_name} K={k}: unexpected error {e}"),
            }

            let report = run(&land, &path, true, &mut NoopPolicy)
                .unwrap_or_else(|e| panic!("{mode_name} K={k}: resume failed: {e}"));
            assert_eq!(
                results_of(&report.final_outcome),
                ref_results,
                "{mode_name} K={k}: recovered results diverge"
            );
            let bytes = std::fs::read(&path)
                .unwrap_or_else(|e| panic!("{mode_name} K={k}: no checkpoint after resume: {e}"));
            assert_eq!(
                bytes, ref_bytes,
                "{mode_name} K={k}: recovered checkpoint not byte-identical"
            );
            assert!(
                journal_bytes(&path).is_empty(),
                "{mode_name} K={k}: journal not reset after recovery"
            );
            let verified = verify_store(&path).expect("verify after recovery");
            assert!(
                verified.clean(),
                "{mode_name} K={k}: store unclean after recovery: {:?}",
                verified.events
            );
        }
    }
}

#[test]
fn resume_skips_completed_steps_and_changed_plans_restart() {
    let land = landscape();
    let path = fresh_store_path("resume.ck");
    let first = run(&land, &path, false, &mut NoopPolicy).expect("first run");
    assert_eq!((first.resumed_from, first.steps_run), (0, 7));

    // Resuming a finished run re-runs nothing and rewrites nothing.
    let before = std::fs::read(&path).expect("checkpoint");
    let again = run(&land, &path, true, &mut NoopPolicy).expect("resume");
    assert_eq!((again.resumed_from, again.steps_run), (7, 0));
    assert_eq!(
        results_of(&again.final_outcome),
        results_of(&first.final_outcome),
        "fully-resumed report diverges"
    );
    assert_eq!(std::fs::read(&path).expect("checkpoint"), before);

    // A different plan must not resume stale progress — but keeps the
    // warm cache (content addressing makes stale entries plain misses).
    let mut longer = plan();
    longer.steps = 8;
    let report = run_daily_durable(
        &land.store,
        &land.service_ids,
        &pipeline_config(),
        &longer,
        &path,
        true,
        &mut NoopPolicy,
        &mut |_, _| {},
    )
    .expect("run under changed plan");
    assert_eq!(
        report.resumed_from, 0,
        "stale progress resumed across plans"
    );
    assert!(report.events.iter().any(|e| e.code == "plan-changed"));
    assert!(report.store_health.ok);
}

#[test]
fn plan_signature_reacts_to_plan_config_and_data() {
    let land = landscape();
    let cfg = pipeline_config();
    let base = plan_signature(&land.store, &land.service_ids, &cfg, &plan());

    let mut p2 = plan();
    p2.steps = 8;
    assert_ne!(
        base,
        plan_signature(&land.store, &land.service_ids, &cfg, &p2)
    );

    let mut cfg2 = pipeline_config();
    cfg2.l2 = None;
    assert_ne!(
        base,
        plan_signature(&land.store, &land.service_ids, &cfg2, &plan())
    );

    let mut small = SimConfig::small_test(11);
    small.days = 8;
    let other = simulate(&small);
    assert_ne!(
        base,
        plan_signature(&other.store, &land.service_ids, &cfg, &plan()),
        "log-store identity not folded into the signature"
    );

    // Thread width must NOT change the signature (results are
    // width-independent, so resume across widths is legal).
    let mut cfg3 = pipeline_config();
    cfg3.par = ParConfig::with_threads(3).expect("width");
    assert_eq!(
        base,
        plan_signature(&land.store, &land.service_ids, &cfg3, &plan())
    );
}
