//! Property tests of the model-evolution invariants the churn CLI and
//! the query server's `/v1/diff` endpoint build on: stability is the
//! Jaccard index over the pair union (1.0 when both models are empty,
//! 0.0 when disjoint), appeared/disappeared/stable partition the
//! union, churn mirrors the detected-vs-reference diff, and name-based
//! re-resolution dedupes rename collisions before comparing.

use logdep::evolution::{app_service_churn, pair_churn};
use logdep::logstore::{NameRegistry, SourceId};
use logdep::{diff_pairs, AppServiceModel, PairModel};
use proptest::prelude::*;
use std::collections::BTreeSet;

fn s(i: u32) -> SourceId {
    SourceId(i)
}

fn pair_model(raw: &[(u32, u32)]) -> PairModel {
    // `insert` normalizes the order and rejects self-pairs, so any raw
    // id soup is a valid model.
    raw.iter().map(|&(a, b)| (s(a), s(b))).collect()
}

fn pair_set(m: &PairModel) -> BTreeSet<(SourceId, SourceId)> {
    m.iter().collect()
}

fn arb_pairs() -> impl Strategy<Value = Vec<(u32, u32)>> {
    prop::collection::vec((0u32..16, 0u32..16), 0..40)
}

proptest! {
    #[test]
    fn stability_is_the_jaccard_index(before_raw in arb_pairs(), after_raw in arb_pairs()) {
        let before = pair_model(&before_raw);
        let after = pair_model(&after_raw);
        let c = pair_churn(&before, &after);
        let stability = c.stability();
        prop_assert!((0.0..=1.0).contains(&stability), "out of range: {stability}");
        let union: BTreeSet<_> = pair_set(&before).union(&pair_set(&after)).copied().collect();
        let inter: BTreeSet<_> =
            pair_set(&before).intersection(&pair_set(&after)).copied().collect();
        let expected = if union.is_empty() {
            1.0
        } else {
            inter.len() as f64 / union.len() as f64
        };
        prop_assert!((stability - expected).abs() < 1e-12, "{stability} != {expected}");
    }

    #[test]
    fn churn_partitions_the_union(before_raw in arb_pairs(), after_raw in arb_pairs()) {
        let before = pair_model(&before_raw);
        let after = pair_model(&after_raw);
        let c = pair_churn(&before, &after);
        // appeared ∪ stable reassembles `after`, disappeared ∪ stable
        // reassembles `before`, and the three parts never overlap.
        let appeared: BTreeSet<_> = c.appeared.iter().copied().collect();
        let disappeared: BTreeSet<_> = c.disappeared.iter().copied().collect();
        let stable: BTreeSet<_> = c.stable.iter().copied().collect();
        prop_assert_eq!(appeared.len() + disappeared.len() + stable.len(),
            c.appeared.len() + c.disappeared.len() + c.stable.len(), "duplicates inside a part");
        prop_assert!(appeared.is_disjoint(&disappeared));
        prop_assert!(appeared.is_disjoint(&stable));
        prop_assert!(disappeared.is_disjoint(&stable));
        let rebuilt_after: BTreeSet<_> = appeared.union(&stable).copied().collect();
        let rebuilt_before: BTreeSet<_> = disappeared.union(&stable).copied().collect();
        prop_assert_eq!(rebuilt_after, pair_set(&after));
        prop_assert_eq!(rebuilt_before, pair_set(&before));
        prop_assert_eq!(c.n_changes(), c.appeared.len() + c.disappeared.len());
    }

    #[test]
    fn churn_reverses_cleanly(before_raw in arb_pairs(), after_raw in arb_pairs()) {
        let before = pair_model(&before_raw);
        let after = pair_model(&after_raw);
        let fwd = pair_churn(&before, &after);
        let rev = pair_churn(&after, &before);
        // Swapping the endpoints swaps appeared/disappeared and leaves
        // the stable core (and so the stability score) untouched.
        let f_app: BTreeSet<_> = fwd.appeared.iter().copied().collect();
        let r_dis: BTreeSet<_> = rev.disappeared.iter().copied().collect();
        prop_assert_eq!(f_app, r_dis);
        let f_sta: BTreeSet<_> = fwd.stable.iter().copied().collect();
        let r_sta: BTreeSet<_> = rev.stable.iter().copied().collect();
        prop_assert_eq!(f_sta, r_sta);
        prop_assert_eq!(fwd.stability().to_bits(), rev.stability().to_bits());
    }

    #[test]
    fn churn_mirrors_the_reference_diff(before_raw in arb_pairs(), after_raw in arb_pairs()) {
        // `/v1/diff` reports churn; the accuracy harness reports a
        // detected-vs-reference diff. Treating the old model as the
        // reference makes them the same partition, and the endpoint can
        // lean on either implementation interchangeably.
        let before = pair_model(&before_raw);
        let after = pair_model(&after_raw);
        let c = pair_churn(&before, &after);
        let d = diff_pairs(&after, &before);
        prop_assert_eq!(c.stable, d.true_pos);
        prop_assert_eq!(c.appeared, d.false_pos);
        prop_assert_eq!(c.disappeared, d.false_neg);
    }

    #[test]
    fn disjoint_models_are_fully_unstable(
        before_raw in prop::collection::vec((0u32..8, 0u32..8), 1..20),
        after_raw in prop::collection::vec((8u32..16, 8u32..16), 1..20),
    ) {
        // Ids drawn from disjoint ranges can never share a pair.
        let before = pair_model(&before_raw);
        let after = pair_model(&after_raw);
        prop_assume!(!before.is_empty() || !after.is_empty());
        let c = pair_churn(&before, &after);
        prop_assert_eq!(c.stable.len(), 0);
        prop_assert_eq!(c.stability(), 0.0);
        prop_assert_eq!(c.n_changes(), before.len() + after.len());
    }

    #[test]
    fn app_service_churn_partitions(
        before_raw in prop::collection::vec((0u32..8, 0usize..8), 0..30),
        after_raw in prop::collection::vec((0u32..8, 0usize..8), 0..30),
    ) {
        let before: AppServiceModel = before_raw.iter().map(|&(a, i)| (s(a), i)).collect();
        let after: AppServiceModel = after_raw.iter().map(|&(a, i)| (s(a), i)).collect();
        let c = app_service_churn(&before, &after);
        let appeared: BTreeSet<_> = c.appeared.iter().copied().collect();
        let disappeared: BTreeSet<_> = c.disappeared.iter().copied().collect();
        let stable: BTreeSet<_> = c.stable.iter().copied().collect();
        prop_assert!(appeared.is_disjoint(&disappeared));
        prop_assert!(appeared.is_disjoint(&stable));
        prop_assert!(disappeared.is_disjoint(&stable));
        let rebuilt_after: BTreeSet<_> = appeared.union(&stable).copied().collect();
        prop_assert_eq!(rebuilt_after, after.iter().collect::<BTreeSet<_>>());
        let rebuilt_before: BTreeSet<_> = disappeared.union(&stable).copied().collect();
        prop_assert_eq!(rebuilt_before, before.iter().collect::<BTreeSet<_>>());
    }

    #[test]
    fn renamed_duplicates_dedupe_before_churn(
        idx in prop::collection::vec((0usize..6, 0usize..6), 1..20),
    ) {
        // The churn CLI re-resolves exported models by *name* into the
        // newer registry. A rename collision — the same logical edge
        // listed twice, once per spelling order — must collapse to one
        // normalized pair, or churn double-counts it.
        let names = ["alpha", "bravo", "charlie", "delta", "echo", "foxtrot"];
        let mut reg = NameRegistry::new();
        for n in names {
            reg.source(n);
        }
        let once: Vec<(&str, &str)> =
            idx.iter().map(|&(a, b)| (names[a], names[b])).collect();
        // Duplicate every edge in reversed spelling order.
        let twice: Vec<(&str, &str)> = once
            .iter()
            .copied()
            .chain(once.iter().map(|&(a, b)| (b, a)))
            .collect();
        let model_once = PairModel::from_names(&reg, once).unwrap();
        let model_twice = PairModel::from_names(&reg, twice).unwrap();
        prop_assert_eq!(&model_once, &model_twice);
        let c = pair_churn(&model_once, &model_twice);
        prop_assert_eq!(c.n_changes(), 0);
        prop_assert_eq!(c.stability(), 1.0);
        prop_assert_eq!(c.stable.len(), model_once.len());
    }
}

#[test]
fn both_empty_is_perfectly_stable() {
    let c = pair_churn(&PairModel::new(), &PairModel::new());
    assert_eq!(c.stability(), 1.0);
    assert_eq!(c.n_changes(), 0);
    let c = app_service_churn(&AppServiceModel::new(), &AppServiceModel::new());
    assert_eq!(c.stability(), 1.0);
}

#[test]
fn unknown_names_refuse_to_resolve() {
    let mut reg = NameRegistry::new();
    reg.source("alpha");
    assert!(PairModel::from_names(&reg, [("alpha", "ghost")]).is_err());
}
