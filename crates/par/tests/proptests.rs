//! Property tests of the pool itself — the contract the detectors'
//! differential harness (`crates/core/tests/par_equivalence.rs`) builds
//! on: order/length preservation of `par_map`, fold/merge equivalence
//! of `par_chunks_fold`, panic poisoning with the original payload, and
//! graceful rejection of `threads = 0`.

use logdep_par::{par_chunks_fold, par_map, ParConfig, ParError};
use proptest::prelude::*;
use std::panic::{catch_unwind, AssertUnwindSafe};

fn cfg(threads: usize) -> ParConfig {
    ParConfig::with_threads(threads).expect("strategy keeps threads >= 1")
}

proptest! {
    #[test]
    fn par_map_preserves_order_and_length(
        items in prop::collection::vec(-1_000_000i64..1_000_000, 0..300),
        threads in 1usize..17,
    ) {
        let serial: Vec<i64> = items.iter().map(|x| x.wrapping_mul(31) ^ 0x5a).collect();
        let par = par_map(&cfg(threads), &items, |x| x.wrapping_mul(31) ^ 0x5a);
        prop_assert_eq!(par.len(), items.len());
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn par_map_identity_roundtrips(
        items in prop::collection::vec(any::<u32>(), 0..200),
        threads in 1usize..13,
    ) {
        let par = par_map(&cfg(threads), &items, |x| *x);
        prop_assert_eq!(par, items);
    }

    #[test]
    fn par_chunks_fold_equals_sequential_fold_saturating_sum(
        items in prop::collection::vec(any::<u64>(), 0..300),
        threads in 1usize..17,
    ) {
        // Saturating addition is associative and commutative with 0 as
        // identity — the accumulator shape the detectors shard.
        let serial = items.iter().fold(0u64, |a, x| a.saturating_add(*x));
        let par = par_chunks_fold(
            &cfg(threads),
            &items,
            || 0u64,
            |a, x| a.saturating_add(*x),
            |a, b| a.saturating_add(b),
        );
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn par_chunks_fold_equals_sequential_fold_max(
        items in prop::collection::vec(-5_000i64..5_000, 0..250),
        threads in 1usize..11,
    ) {
        let serial = items.iter().fold(i64::MIN, |a, x| a.max(*x));
        let par = par_chunks_fold(
            &cfg(threads),
            &items,
            || i64::MIN,
            |a, x| a.max(*x),
            |a, b| a.max(b),
        );
        prop_assert_eq!(par, serial);
    }

    #[test]
    fn panicking_task_poisons_with_original_payload_not_deadlock(
        n in 2usize..150,
        threads in 2usize..9,
        victim_seed in any::<u32>(),
    ) {
        let items: Vec<usize> = (0..n).collect();
        let victim = victim_seed as usize % n;
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&cfg(threads), &items, |&x| {
                if x == victim {
                    panic!("poison marker {victim}");
                }
                x
            })
        }));
        let payload = match caught {
            Ok(_) => return Err(TestCaseError::fail("panic did not propagate")),
            Err(p) => p,
        };
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        prop_assert_eq!(msg, format!("poison marker {}", victim));
    }
}

#[test]
fn zero_threads_is_an_error_never_a_panic() {
    let result = catch_unwind(|| ParConfig::with_threads(0));
    let inner = result.expect("constructing a bad config must not panic");
    assert_eq!(inner, Err(ParError::ZeroThreads));
    let msg = ParError::ZeroThreads.to_string();
    assert!(msg.contains("thread count"), "actionable message: {msg}");
}
