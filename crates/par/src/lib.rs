//! # logdep-par — the deterministic scoped worker pool
//!
//! The paper's pipeline is embarrassingly parallel: L1 runs an
//! independent median-CI test per (pair, hour-slot), L2 one G² test per
//! ordered source pair over independently countable sessions, and L3
//! scans each log line in isolation. This crate is the *only* place the
//! workspace is allowed to spawn threads (enforced by the
//! `raw-thread-spawn` deny rule of `cargo xtask lint`), and it makes one
//! promise the detectors' differential test harness holds it to:
//!
//! > **For every primitive here, the result is bit-identical to the
//! > serial loop, at every thread count.**
//!
//! That works because the primitives never race on *data* — they race
//! only on *which worker computes which chunk*, and chunk results are
//! reassembled in chunk order before anything order-sensitive happens:
//!
//! - [`par_map`] preserves input order and length exactly;
//! - [`par_chunks_fold`] folds contiguous shards and merges the shard
//!   accumulators left-to-right in shard order (deterministic as long
//!   as the caller's `merge` is associative with `init()` as identity);
//! - `threads = 1` (see [`ParConfig::serial`]) short-circuits to
//!   literally the sequential loop — no threads, no chunking.
//!
//! The pool is hand-rolled over [`std::thread::scope`] because the
//! workspace vendors all dependencies offline (no rayon/crossbeam).
//! Worker panics are captured per task and re-raised on the calling
//! thread with the *original* payload once every worker has parked —
//! a panicking task poisons the scope, it never deadlocks it.
//!
//! Thread count resolution order: an explicit [`ParConfig`] wins, then
//! the `LOGDEP_THREADS` environment variable, then the host's available
//! parallelism (capped at [`MAX_AUTO_THREADS`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// Environment variable overriding the default worker count.
pub const LOGDEP_THREADS_ENV: &str = "LOGDEP_THREADS";

/// Upper bound on the *auto-detected* thread count. An explicit
/// [`ParConfig::with_threads`] or `LOGDEP_THREADS` value may exceed it.
pub const MAX_AUTO_THREADS: usize = 8;

/// Target number of chunks handed to each worker, so stragglers can
/// steal work without the merge order ever depending on timing.
const CHUNKS_PER_WORKER: usize = 4;

/// Errors from pool configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParError {
    /// A thread count of zero was requested.
    ZeroThreads,
}

impl std::fmt::Display for ParError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParError::ZeroThreads => {
                write!(f, "thread count must be >= 1 (use 1 for the serial path)")
            }
        }
    }
}

impl std::error::Error for ParError {}

/// Worker-count configuration for the pool primitives.
///
/// The field is private so the `threads >= 1` invariant holds by
/// construction: [`ParConfig::with_threads`] rejects zero with
/// [`ParError::ZeroThreads`] instead of ever panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParConfig {
    threads: usize,
}

impl ParConfig {
    /// The serial configuration: every primitive runs the plain
    /// sequential loop on the calling thread.
    pub fn serial() -> Self {
        Self { threads: 1 }
    }

    /// An explicit worker count. Zero is rejected as an error.
    pub fn with_threads(threads: usize) -> Result<Self, ParError> {
        if threads == 0 {
            return Err(ParError::ZeroThreads);
        }
        Ok(Self { threads })
    }

    /// The configured worker count (always >= 1).
    pub fn threads(self) -> usize {
        self.threads
    }

    /// Whether this configuration takes the strictly-sequential path.
    pub fn is_serial(self) -> bool {
        self.threads == 1
    }

    /// Resolves the worker count from `LOGDEP_THREADS`, falling back to
    /// [`ParConfig::hardware`] when the variable is unset, unparsable,
    /// or zero (an env override cannot error, so it degrades instead).
    pub fn from_env() -> Self {
        match std::env::var(LOGDEP_THREADS_ENV) {
            Ok(v) => match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Self { threads: n },
                _ => Self::hardware(),
            },
            Err(_) => Self::hardware(),
        }
    }

    /// The host's available parallelism, capped at [`MAX_AUTO_THREADS`].
    pub fn hardware() -> Self {
        let n = std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1);
        Self {
            threads: n.clamp(1, MAX_AUTO_THREADS),
        }
    }
}

impl Default for ParConfig {
    /// [`ParConfig::from_env`]: the `LOGDEP_THREADS` override, else the
    /// capped hardware parallelism.
    fn default() -> Self {
        Self::from_env()
    }
}

/// Structured concurrency entry point: a thin re-export of
/// [`std::thread::scope`], so callers outside `crates/par` never touch
/// `std::thread` directly (the `raw-thread-spawn` lint denies it).
/// Threads spawned on the scope are joined before `scope` returns, and
/// a panicking scoped thread propagates its payload to the caller.
pub fn scope<'env, F, T>(f: F) -> T
where
    F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
{
    std::thread::scope(f)
}

/// Chunk length giving each worker ~[`CHUNKS_PER_WORKER`] chunks.
fn chunk_len(n: usize, threads: usize) -> usize {
    let target_chunks = threads.saturating_mul(CHUNKS_PER_WORKER).max(1);
    n.div_ceil(target_chunks).max(1)
}

/// How one worker thread ended.
enum WorkerEnd<R> {
    /// Chunk results this worker computed, tagged with chunk indices.
    Done(Vec<(usize, R)>),
    /// The worker's current task panicked; the payload is preserved.
    Panicked(Box<dyn Any + Send>),
}

/// Runs `f` over every chunk on `threads` workers and returns the
/// results **in chunk order**, independent of scheduling. Chunks are
/// claimed dynamically (an atomic cursor), so stragglers balance load,
/// but results are reassembled by chunk index before returning.
///
/// If any invocation of `f` panics, the panic is captured, the
/// remaining workers drain (they stop claiming new chunks), and the
/// original payload is re-raised on the calling thread.
fn run_chunks<T, R, F>(threads: usize, chunks: &[&[T]], f: &F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&[T]) -> R + Sync,
{
    let next = AtomicUsize::new(0);
    let poisoned = AtomicBool::new(false);

    let outcome: Result<Vec<R>, Box<dyn Any + Send>> = std::thread::scope(|s| {
        let workers: Vec<_> = (0..threads)
            .map(|_| {
                s.spawn(|| {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        if poisoned.load(Ordering::Acquire) {
                            break;
                        }
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        let Some(slice) = chunks.get(c) else { break };
                        match catch_unwind(AssertUnwindSafe(|| f(slice))) {
                            Ok(r) => local.push((c, r)),
                            Err(payload) => {
                                poisoned.store(true, Ordering::Release);
                                return WorkerEnd::Panicked(payload);
                            }
                        }
                    }
                    WorkerEnd::Done(local)
                })
            })
            .collect();

        let mut tagged: Vec<(usize, R)> = Vec::with_capacity(chunks.len());
        let mut first_panic: Option<Box<dyn Any + Send>> = None;
        for w in workers {
            match w.join() {
                Ok(WorkerEnd::Done(local)) => tagged.extend(local),
                Ok(WorkerEnd::Panicked(p)) | Err(p) => {
                    if first_panic.is_none() {
                        first_panic = Some(p);
                    }
                }
            }
        }
        match first_panic {
            Some(p) => Err(p),
            None => {
                tagged.sort_unstable_by_key(|&(c, _)| c);
                Ok(tagged.into_iter().map(|(_, r)| r).collect())
            }
        }
    });

    match outcome {
        Ok(results) => results,
        Err(payload) => resume_unwind(payload),
    }
}

/// Order-preserving parallel map: returns `f` applied to every item,
/// in input order, with `out.len() == items.len()`.
///
/// With `cfg.threads() == 1` (or fewer than two items) this *is* the
/// sequential `items.iter().map(f).collect()` — no threads are spawned.
/// Otherwise items are split into contiguous chunks, mapped on the
/// pool, and reassembled in chunk order, so the output is bit-identical
/// to the serial path for any thread count.
pub fn par_map<T, O, F>(cfg: &ParConfig, items: &[T], f: F) -> Vec<O>
where
    T: Sync,
    O: Send,
    F: Fn(&T) -> O + Sync,
{
    if cfg.is_serial() || items.len() <= 1 {
        return items.iter().map(|t| f(t)).collect();
    }
    let threads = cfg.threads().min(items.len());
    let chunks: Vec<&[T]> = items.chunks(chunk_len(items.len(), threads)).collect();
    let per_chunk = run_chunks(threads, &chunks, &|slice: &[T]| {
        slice.iter().map(|t| f(t)).collect::<Vec<O>>()
    });
    let mut out = Vec::with_capacity(items.len());
    for v in per_chunk {
        out.extend(v);
    }
    out
}

/// Sharded fold with a deterministic ordered merge: contiguous shards
/// of `items` are folded independently (each from a fresh `init()`),
/// then the shard accumulators are merged **left-to-right in shard
/// order** into a final `init()` accumulator.
///
/// With `cfg.threads() == 1` this is literally the sequential
/// `items.iter().fold(init(), fold)`.
///
/// For the parallel result to equal the serial fold at every thread
/// count, the caller's operations must satisfy:
/// - `merge` is associative, and
/// - `merge(init(), a) == a` (`init()` is a merge identity), and
/// - folding a concatenation equals merging the folds
///   (`fold` distributes over `merge`, as counting/summing does).
///
/// Counting accumulators (maps of saturating counters, sums, extrema)
/// satisfy all three; that is exactly the shape L2's bigram sharding
/// and L3's citation scan use.
pub fn par_chunks_fold<T, A, FI, FF, FM>(
    cfg: &ParConfig,
    items: &[T],
    init: FI,
    fold: FF,
    mut merge: FM,
) -> A
where
    T: Sync,
    A: Send,
    FI: Fn() -> A + Sync,
    FF: Fn(A, &T) -> A + Sync,
    FM: FnMut(A, A) -> A,
{
    if cfg.is_serial() || items.len() <= 1 {
        return items.iter().fold(init(), |acc, t| fold(acc, t));
    }
    let threads = cfg.threads().min(items.len());
    let chunks: Vec<&[T]> = items.chunks(chunk_len(items.len(), threads)).collect();
    let shard_accs = run_chunks(threads, &chunks, &|slice: &[T]| {
        slice.iter().fold(init(), |acc, t| fold(acc, t))
    });
    shard_accs.into_iter().fold(init(), |a, b| merge(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn with_threads_rejects_zero_with_error() {
        assert_eq!(ParConfig::with_threads(0), Err(ParError::ZeroThreads));
        assert!(ParError::ZeroThreads.to_string().contains(">= 1"));
        let ok = ParConfig::with_threads(3).expect("3 threads is valid");
        assert_eq!(ok.threads(), 3);
        assert!(!ok.is_serial());
        assert!(ParConfig::serial().is_serial());
    }

    #[test]
    fn hardware_config_is_sane() {
        let hw = ParConfig::hardware();
        assert!(hw.threads() >= 1 && hw.threads() <= MAX_AUTO_THREADS);
    }

    #[test]
    fn par_map_matches_serial_across_thread_counts() {
        let items: Vec<i64> = (0..257).map(|i| i * 31 % 97 - 40).collect();
        let serial: Vec<i64> = items.iter().map(|x| x * x - 7).collect();
        for threads in [1usize, 2, 3, 5, 8, 64] {
            let cfg = ParConfig::with_threads(threads).expect("nonzero");
            let par = par_map(&cfg, &items, |x| x * x - 7);
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn par_map_empty_and_singleton() {
        let cfg = ParConfig::with_threads(4).expect("nonzero");
        let empty: Vec<u8> = Vec::new();
        assert!(par_map(&cfg, &empty, |x| *x).is_empty());
        assert_eq!(par_map(&cfg, &[9u8], |x| *x + 1), vec![10]);
    }

    #[test]
    fn par_chunks_fold_matches_serial_sum() {
        let items: Vec<u64> = (0..1000).map(|i| i * 7 % 1009).collect();
        let serial: u64 = items.iter().sum();
        for threads in [1usize, 2, 4, 7, 16] {
            let cfg = ParConfig::with_threads(threads).expect("nonzero");
            let par = par_chunks_fold(
                &cfg,
                &items,
                || 0u64,
                |acc, x| acc.saturating_add(*x),
                |a, b| a.saturating_add(b),
            );
            assert_eq!(par, serial, "threads = {threads}");
        }
    }

    #[test]
    fn panicking_task_poisons_scope_with_original_payload() {
        let items: Vec<u32> = (0..100).collect();
        let cfg = ParConfig::with_threads(4).expect("nonzero");
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&cfg, &items, |&x| {
                if x == 41 {
                    panic!("original payload 41");
                }
                x
            })
        }));
        let payload = caught.expect_err("panic must propagate");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_default();
        assert_eq!(msg, "original payload 41");
    }

    #[test]
    fn panic_on_serial_path_also_propagates() {
        let items = [1u8];
        let caught = catch_unwind(AssertUnwindSafe(|| {
            par_map(&ParConfig::serial(), &items, |_| -> u8 {
                panic!("serial boom")
            })
        }));
        assert!(caught.is_err());
    }

    #[test]
    fn scope_wrapper_joins_and_returns() {
        let sum = scope(|s| {
            let a = s.spawn(|| 20);
            let b = s.spawn(|| 22);
            a.join().unwrap_or(0) + b.join().unwrap_or(0)
        });
        assert_eq!(sum, 42);
    }

    #[test]
    fn from_env_prefers_valid_override() {
        // Can't mutate the process env safely in a threaded test binary;
        // just pin down the fallback contract.
        let cfg = ParConfig::from_env();
        assert!(cfg.threads() >= 1);
    }
}
