//! User-session reconstruction from log streams.
//!
//! Technique L2 of Steinle et al. (VLDB 2006) mines co-occurrence
//! statistics *within user sessions*, which first have to be carved out
//! of the interleaved log stream. The paper notes this is challenging
//! because "a machine can be shared by different users, and a user might
//! be active on different machines" (§3.2); the session-creation
//! procedure itself is environment-specific, so — like the paper — we
//! use the natural key available in the log schema: a session is a
//! maximal run of logs sharing `(user, host)` with no inactivity gap
//! longer than a threshold.
//!
//! The output deliberately reduces each session to an *ordered sequence
//! of activity statements* `(timestamp, source)` — exactly the view L2
//! consumes (§3.2: "a session is treated as an ordered sequence of
//! activity statements by different applications").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use logdep_logstore::time::TimeRange;
use logdep_logstore::{HostId, LogStore, Millis, SourceId, UserId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters of session reconstruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SessionConfig {
    /// Maximum inactivity gap inside one session, in milliseconds; a
    /// longer silence closes the session and a subsequent log with the
    /// same `(user, host)` opens a new one.
    pub max_gap_ms: i64,
    /// Sessions with fewer logs than this are discarded (too short to
    /// carry co-occurrence signal).
    pub min_logs: usize,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            max_gap_ms: 30 * 60 * 1_000, // 30 minutes
            min_logs: 4,
        }
    }
}

/// One log entry inside a session: the activity-statement view.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SessionEntry {
    /// Client timestamp of the log.
    pub ts: Millis,
    /// The application that emitted it.
    pub source: SourceId,
}

/// A reconstructed user session.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Session {
    /// The user the session belongs to.
    pub user: UserId,
    /// The client machine it ran on.
    pub host: HostId,
    /// Entries ordered by timestamp.
    pub entries: Vec<SessionEntry>,
}

impl Session {
    /// Session start (timestamp of the first entry).
    pub fn start(&self) -> Millis {
        // lint:allow(no-panic-in-lib) — reconstruction never emits empty sessions
        self.entries.first().expect("sessions are non-empty").ts
    }

    /// Session end (timestamp of the last entry).
    pub fn end(&self) -> Millis {
        // lint:allow(no-panic-in-lib) — reconstruction never emits empty sessions
        self.entries.last().expect("sessions are non-empty").ts
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the session has no entries (never produced by
    /// reconstruction; present for API completeness).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Distinct sources active in the session.
    pub fn distinct_sources(&self) -> usize {
        let mut s: Vec<SourceId> = self.entries.iter().map(|e| e.source).collect();
        s.sort_unstable();
        s.dedup();
        s.len()
    }
}

/// Reconstruction statistics (the paper reports ~4000 sessions per
/// weekday with 7.5–11 % of logs assignable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Logs examined.
    pub total_logs: usize,
    /// Logs carrying the `(user, host)` key.
    pub keyed_logs: usize,
    /// Logs that ended up in a kept session.
    pub assigned_logs: usize,
    /// Sessions kept after the minimum-size filter.
    pub n_sessions: usize,
    /// Sessions discarded as too short.
    pub discarded_sessions: usize,
}

impl SessionStats {
    /// Fraction of all logs assigned to a session.
    pub fn assigned_fraction(&self) -> f64 {
        if self.total_logs == 0 {
            0.0
        } else {
            self.assigned_logs as f64 / self.total_logs as f64
        }
    }
}

/// The result of a reconstruction run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SessionSet {
    /// Kept sessions, ordered by start time.
    pub sessions: Vec<Session>,
    /// Reconstruction statistics.
    pub stats: SessionStats,
}

/// Reconstructs sessions from the whole store.
pub fn reconstruct(store: &LogStore, cfg: &SessionConfig) -> SessionSet {
    reconstruct_records(store.records().iter(), cfg)
}

/// Reconstructs sessions from the records inside `range` only.
pub fn reconstruct_range(store: &LogStore, range: TimeRange, cfg: &SessionConfig) -> SessionSet {
    reconstruct_records(store.range(range).iter(), cfg)
}

fn reconstruct_records<'a>(
    records: impl Iterator<Item = &'a logdep_logstore::LogRecord>,
    cfg: &SessionConfig,
) -> SessionSet {
    let mut open: BTreeMap<(UserId, HostId), Session> = BTreeMap::new();
    let mut done: Vec<Session> = Vec::new();
    let mut stats = SessionStats::default();

    for rec in records {
        stats.total_logs += 1;
        let (user, host) = match (rec.user, rec.host) {
            (Some(u), Some(h)) => (u, h),
            _ => continue,
        };
        stats.keyed_logs += 1;
        let entry = SessionEntry {
            ts: rec.client_ts,
            source: rec.source,
        };
        match open.get_mut(&(user, host)) {
            Some(sess) => {
                if entry.ts - sess.end() > cfg.max_gap_ms {
                    // Gap too long: close and reopen.
                    let closed = std::mem::replace(
                        sess,
                        Session {
                            user,
                            host,
                            entries: vec![entry],
                        },
                    );
                    done.push(closed);
                } else {
                    sess.entries.push(entry);
                }
            }
            None => {
                open.insert(
                    (user, host),
                    Session {
                        user,
                        host,
                        entries: vec![entry],
                    },
                );
            }
        }
    }
    done.extend(open.into_values());

    let mut kept: Vec<Session> = Vec::new();
    for s in done {
        if s.len() >= cfg.min_logs {
            stats.assigned_logs += s.len();
            kept.push(s);
        } else {
            stats.discarded_sessions += 1;
        }
    }
    kept.sort_by_key(|s| (s.start(), s.user, s.host));
    stats.n_sessions = kept.len();

    SessionSet {
        sessions: kept,
        stats,
    }
}

/// Per-day session counts over a multi-day store (Figure 6 commentary:
/// "about 4000 sessions for week days and about 1000 on Saturday or
/// Sunday").
pub fn sessions_per_day(store: &LogStore, days: u32, cfg: &SessionConfig) -> Vec<usize> {
    (0..days as i64)
        .map(|d| {
            reconstruct_range(store, TimeRange::day(d), cfg)
                .stats
                .n_sessions
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logdep_logstore::{LogRecord, LogStore};

    /// One row: (timestamp, source, optional (user, host)).
    type Row = (i64, u32, Option<(u32, u32)>);

    /// Builds a store from rows; a `None` key produces context-free logs.
    fn store(rows: &[Row]) -> LogStore {
        let mut s = LogStore::new();
        for &(t, src, ctx) in rows {
            let mut rec = LogRecord::minimal(SourceId(src), Millis(t));
            if let Some((u, h)) = ctx {
                rec = rec.with_user(UserId(u)).with_host(HostId(h));
            }
            s.push(rec);
        }
        s.finalize();
        s
    }

    fn cfg(gap: i64, min: usize) -> SessionConfig {
        SessionConfig {
            max_gap_ms: gap,
            min_logs: min,
        }
    }

    #[test]
    fn basic_single_session() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (100, 1, Some((1, 1))),
            (200, 0, Some((1, 1))),
            (300, 2, Some((1, 1))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 1);
        let sess = &set.sessions[0];
        assert_eq!(sess.len(), 4);
        assert!(!sess.is_empty());
        assert_eq!(sess.start(), Millis(0));
        assert_eq!(sess.end(), Millis(300));
        assert_eq!(sess.distinct_sources(), 3);
        assert_eq!(set.stats.assigned_fraction(), 1.0);
    }

    #[test]
    fn contextless_logs_are_skipped() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (50, 5, None), // backend log without context
            (100, 1, Some((1, 1))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.stats.total_logs, 3);
        assert_eq!(set.stats.keyed_logs, 2);
        assert_eq!(set.sessions[0].len(), 2);
        assert!((set.stats.assigned_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn gap_splits_sessions() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (100, 1, Some((1, 1))),
            (10_000, 0, Some((1, 1))), // 9.9 s gap
            (10_100, 1, Some((1, 1))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 2);
        assert_eq!(set.sessions[0].end(), Millis(100));
        assert_eq!(set.sessions[1].start(), Millis(10_000));
    }

    #[test]
    fn gap_exactly_at_threshold_does_not_split() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (1_000, 1, Some((1, 1))), // gap == max_gap
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 1);
    }

    #[test]
    fn different_users_on_shared_machine_are_separate() {
        let s = store(&[
            (0, 0, Some((1, 9))),
            (10, 0, Some((2, 9))), // other user, same machine
            (20, 1, Some((1, 9))),
            (30, 1, Some((2, 9))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 2);
        for sess in &set.sessions {
            assert_eq!(sess.len(), 2);
        }
    }

    #[test]
    fn same_user_on_two_machines_is_two_sessions() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (10, 0, Some((1, 2))),
            (20, 1, Some((1, 1))),
            (30, 1, Some((1, 2))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 2);
    }

    #[test]
    fn min_logs_filter_discards_short_sessions() {
        let s = store(&[
            (0, 0, Some((1, 1))),
            (10, 1, Some((1, 1))),
            (20, 2, Some((2, 2))), // lone log of user 2
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 1);
        assert_eq!(set.stats.discarded_sessions, 1);
        assert_eq!(set.stats.assigned_logs, 2);
    }

    #[test]
    fn sessions_sorted_by_start() {
        let s = store(&[
            (500, 0, Some((2, 2))),
            (510, 1, Some((2, 2))),
            (0, 0, Some((1, 1))),
            (10, 1, Some((1, 1))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 2);
        assert!(set.sessions[0].start() <= set.sessions[1].start());
        assert_eq!(set.sessions[0].user, UserId(1));
    }

    #[test]
    fn range_restriction() {
        use logdep_logstore::time::MS_PER_DAY;
        let s = store(&[
            (0, 0, Some((1, 1))),
            (10, 1, Some((1, 1))),
            (MS_PER_DAY + 5, 0, Some((1, 1))),
            (MS_PER_DAY + 15, 1, Some((1, 1))),
        ]);
        let set = reconstruct_range(&s, TimeRange::day(1), &cfg(1_000, 2));
        assert_eq!(set.sessions.len(), 1);
        assert_eq!(set.sessions[0].start(), Millis(MS_PER_DAY + 5));
        let counts = sessions_per_day(&s, 2, &cfg(1_000, 2));
        assert_eq!(counts, vec![1, 1]);
    }

    #[test]
    fn entries_remain_time_ordered() {
        let s = store(&[
            (30, 2, Some((1, 1))),
            (10, 0, Some((1, 1))),
            (20, 1, Some((1, 1))),
            (40, 0, Some((1, 1))),
        ]);
        let set = reconstruct(&s, &cfg(1_000, 2));
        let ts: Vec<i64> = set.sessions[0].entries.iter().map(|e| e.ts.0).collect();
        assert_eq!(ts, vec![10, 20, 30, 40]);
    }

    #[test]
    fn empty_store() {
        let mut s = LogStore::new();
        s.finalize();
        let set = reconstruct(&s, &SessionConfig::default());
        assert!(set.sessions.is_empty());
        assert_eq!(set.stats.assigned_fraction(), 0.0);
    }

    #[test]
    fn default_config_values() {
        let c = SessionConfig::default();
        assert_eq!(c.max_gap_ms, 1_800_000);
        assert_eq!(c.min_logs, 4);
    }
}
