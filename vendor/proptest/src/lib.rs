//! Offline vendored stand-in for the `proptest` crate.
//!
//! Supports the subset of the proptest 1.x API used by this workspace:
//! the [`proptest!`] macro (with `#![proptest_config(..)]`), range and
//! regex-character-class strategies, `prop::collection::vec`,
//! `prop::option::of`, tuple strategies, `prop_map`, `Just`, `any::<T>()`,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` macros.
//!
//! Differences from real proptest, on purpose:
//! - no shrinking — a failing case reports its inputs and seed verbatim;
//! - string "regex" strategies cover the patterns used here (character
//!   classes, `.`, literals, `{n}` / `{lo,hi}` / `*` / `+` / `?`), not
//!   the full regex grammar;
//! - generation is deterministic per test name, so failures reproduce.

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Commonly imported names, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Strategy combinator modules, mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Declares property tests. See the crate docs for the supported shape.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])+
        fn $name() {
            let config = $cfg;
            let strategy = ($($strat,)+);
            $crate::test_runner::run_property(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| {
                    $body
                    ::std::result::Result::Ok(())
                },
            );
        }
    )*};
}

/// Fails the current case (without panicking the runner) when `cond` is
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Equality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", *l, *r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)*);
    }};
}

/// Inequality form of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", *l, *r);
    }};
}

/// Discards the current case when `cond` does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
