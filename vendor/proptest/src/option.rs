//! `Option` strategies (`prop::option`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;

/// Strategy yielding `Some` from `inner` three times out of four,
/// `None` otherwise (matching real proptest's default weighting).
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// See [`of`].
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S>
where
    S::Value: Debug,
{
    type Value = Option<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        if rng.rng.gen_bool(0.75) {
            Some(self.inner.new_value(rng))
        } else {
            None
        }
    }
}
