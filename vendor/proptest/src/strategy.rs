//! The [`Strategy`] trait and core combinators.

use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of a type.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Applies `f` to every generated value.
    fn prop_map<O: Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates with this strategy but discards cases where `f` is false.
    ///
    /// The rejection is handled by the runner's retry loop.
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }

    /// Erases the concrete strategy type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: std::rc::Rc::new(self),
        }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).new_value(rng)
    }
}

/// Strategy yielding one fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn new_value(&self, rng: &mut TestRng) -> S::Value {
        // Bounded local retry; the runner rejects pathological filters.
        for _ in 0..1_000 {
            let v = self.inner.new_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// A reference-counted type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    inner: std::rc::Rc<dyn Strategy<Value = T>>,
}

impl<T: Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        self.inner.new_value(rng)
    }
}

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                rng.rng.gen_range(self.clone())
            }
        }
    )*};
}

int_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! tuple_strategy {
    ($(($($n:tt $s:ident),+)),+ $(,)?) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.new_value(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F, 6 G, 7 H),
);

impl Strategy for &'static str {
    type Value = String;
    fn new_value(&self, rng: &mut TestRng) -> String {
        crate::string::generate(self, rng)
    }
}
