//! `any::<T>()` strategies for primitives.
//!
//! Float strategies deliberately include the nasty values (NaN, the
//! infinities, signed zero) a few percent of the time — the workspace's
//! robustness suites rely on that to exercise NaN-safety paths.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::marker::PhantomData;

/// Strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        marker: PhantomData,
    }
}

/// Types with a default "anything goes" strategy.
pub trait Arbitrary: Sized + Debug {
    /// Generates one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// See [`any`].
pub struct AnyStrategy<T> {
    marker: PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                // Mix full-range values with small ones so boundary-heavy
                // code paths (0, 1, small counts) are exercised often.
                if rng.rng.gen_bool(0.5) {
                    rng.rng.gen::<u64>() as $t
                } else {
                    (rng.rng.gen::<u64>() % 16) as $t
                }
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.rng.gen_bool(0.5)
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let pick = rng.rng.gen_range(0u32..100);
        match pick {
            0..=2 => f64::NAN,
            3 => f64::INFINITY,
            4 => f64::NEG_INFINITY,
            5 => -0.0,
            6 => 0.0,
            7 => f64::MIN_POSITIVE,
            8 => f64::MAX,
            _ => {
                // Log-uniform magnitude over ±1e±12 keeps both tiny and
                // huge values common.
                let mag = 10f64.powf(rng.rng.gen_range(-12.0..12.0));
                let sign = if rng.rng.gen_bool(0.5) { 1.0 } else { -1.0 };
                sign * mag
            }
        }
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> Self {
        char::from(rng.rng.gen_range(0x20u8..0x7f))
    }
}

impl Arbitrary for String {
    fn arbitrary(rng: &mut TestRng) -> Self {
        let n = rng.rng.gen_range(0usize..40);
        (0..n).map(|_| char::arbitrary(rng)).collect()
    }
}
