//! Regex-lite string generation for string-literal strategies.
//!
//! Supports the pattern shapes used as strategies in this workspace:
//! sequences of atoms, where an atom is a character class `[...]`
//! (ranges, escapes, trailing literal `-`), a dot (any printable ASCII),
//! or a literal character, each optionally quantified with `{n}`,
//! `{lo,hi}`, `*`, `+`, or `?`.

use crate::test_runner::TestRng;
use rand::Rng;

enum Atom {
    /// Set of candidate characters.
    Class(Vec<char>),
    /// Any printable ASCII character (the `.` atom).
    Dot,
    /// One fixed character.
    Literal(char),
}

struct Quantified {
    atom: Atom,
    min: usize,
    max: usize,
}

/// Generates one string matching `pattern`.
pub fn generate(pattern: &str, rng: &mut TestRng) -> String {
    let atoms = parse(pattern);
    let mut out = String::new();
    for q in &atoms {
        let n = if q.min == q.max {
            q.min
        } else {
            rng.rng.gen_range(q.min..=q.max)
        };
        for _ in 0..n {
            out.push(match &q.atom {
                Atom::Class(chars) => chars[rng.rng.gen_range(0..chars.len())],
                Atom::Dot => char::from(rng.rng.gen_range(0x20u8..0x7f)),
                Atom::Literal(c) => *c,
            });
        }
    }
    out
}

fn parse(pattern: &str) -> Vec<Quantified> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut out = Vec::new();
    while i < chars.len() {
        let atom = match chars[i] {
            '[' => {
                let (set, next) = parse_class(&chars, i + 1);
                i = next;
                Atom::Class(set)
            }
            '.' => {
                i += 1;
                Atom::Dot
            }
            '\\' => {
                i += 2;
                Atom::Literal(*chars.get(i - 1).unwrap_or(&'\\'))
            }
            c => {
                i += 1;
                Atom::Literal(c)
            }
        };
        let (min, max, next) = parse_quantifier(&chars, i);
        i = next;
        out.push(Quantified { atom, min, max });
    }
    out
}

fn parse_class(chars: &[char], mut i: usize) -> (Vec<char>, usize) {
    let mut set = Vec::new();
    while i < chars.len() && chars[i] != ']' {
        let c = if chars[i] == '\\' {
            i += 1;
            *chars.get(i).unwrap_or(&'\\')
        } else {
            chars[i]
        };
        // `a-z` range (a `-` not in last position and not escaped).
        if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
            let hi = chars[i + 2];
            for code in (c as u32)..=(hi as u32) {
                if let Some(ch) = char::from_u32(code) {
                    set.push(ch);
                }
            }
            i += 3;
        } else {
            set.push(c);
            i += 1;
        }
    }
    assert!(!set.is_empty(), "empty character class in pattern");
    (set, i + 1) // skip the closing ']'
}

fn parse_quantifier(chars: &[char], i: usize) -> (usize, usize, usize) {
    match chars.get(i) {
        Some('{') => {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .map(|p| i + p)
                .expect("unclosed `{` quantifier");
            let body: String = chars[i + 1..close].iter().collect();
            let (min, max) = match body.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier lower bound"),
                    hi.trim().parse().expect("bad quantifier upper bound"),
                ),
                None => {
                    let n = body.trim().parse().expect("bad quantifier count");
                    (n, n)
                }
            };
            (min, max, close + 1)
        }
        Some('*') => (0, 8, i + 1),
        Some('+') => (1, 8, i + 1),
        Some('?') => (0, 1, i + 1),
        _ => (1, 1, i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    fn rng() -> TestRng {
        TestRng::for_test("string_tests", 42)
    }

    #[test]
    fn class_with_ranges_and_escapes() {
        let mut rng = rng();
        for _ in 0..200 {
            let s = generate("[A-Za-z0-9 ()\\[\\]._-]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || " ()[]._-".contains(c)));
        }
    }

    #[test]
    fn exact_count_and_leading_class() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate("[A-Z][A-Z0-9]{2,12}", &mut rng);
            assert!((3..=13).contains(&s.len()));
            assert!(s.chars().next().unwrap().is_ascii_uppercase());
        }
    }

    #[test]
    fn dot_is_printable_ascii() {
        let mut rng = rng();
        for _ in 0..100 {
            let s = generate(".{0,100}", &mut rng);
            assert!(s.len() <= 100);
            assert!(s.chars().all(|c| (' '..='~').contains(&c)));
        }
    }
}
