//! Collection strategies (`prop::collection`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::fmt::Debug;
use std::ops::Range;

/// Strategy for `Vec`s with element strategy `element` and a length drawn
/// uniformly from `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    VecStrategy { element, size }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S>
where
    S::Value: Debug,
{
    type Value = Vec<S::Value>;

    fn new_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.rng.gen_range(self.size.clone());
        (0..n).map(|_| self.element.new_value(rng)).collect()
    }
}
