//! The deterministic property-test runner.

use crate::strategy::Strategy;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt::Debug;

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 96 }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` failed — skip this case without counting it.
    Reject,
    /// `prop_assert!` failed — the property is violated.
    Fail(String),
}

impl TestCaseError {
    /// Constructs the failure variant.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError::Fail(message.into())
    }
}

/// The RNG handed to strategies.
///
/// Wraps the vendored [`StdRng`] so strategy implementations don't need
/// the rand traits in scope.
pub struct TestRng {
    /// Underlying generator.
    pub rng: StdRng,
}

impl TestRng {
    /// Deterministic RNG for `test_name`, case number `case`.
    pub fn for_test(test_name: &str, case: u64) -> Self {
        let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            seed ^= u64::from(b);
            seed = seed.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            rng: StdRng::seed_from_u64(seed ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }
}

/// Runs `property` against `config.cases` generated inputs.
///
/// Panics (failing the `#[test]`) on the first violated case, reporting
/// the case number and the generated input; there is no shrinking.
pub fn run_property<S, F>(test_name: &str, config: &ProptestConfig, strategy: &S, mut property: F)
where
    S: Strategy,
    S::Value: Debug,
    F: FnMut(S::Value) -> Result<(), TestCaseError>,
{
    let mut passed: u32 = 0;
    let mut rejected: u64 = 0;
    let max_rejects = u64::from(config.cases) * 16 + 1_000;
    let mut case: u64 = 0;
    while passed < config.cases {
        let mut rng = TestRng::for_test(test_name, case);
        case += 1;
        let input = strategy.new_value(&mut rng);
        let shown = format!("{input:?}");
        match property(input) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject) => {
                rejected += 1;
                assert!(
                    rejected <= max_rejects,
                    "{test_name}: gave up after {rejected} prop_assume rejections \
                     ({passed}/{} cases passed)",
                    config.cases
                );
            }
            Err(TestCaseError::Fail(message)) => {
                panic!(
                    "{test_name}: property failed at case {case}: {message}\n\
                     input: {shown}\n\
                     (deterministic; rerun reproduces this case)"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passing_property_runs_all_cases() {
        let mut count = 0u32;
        let cfg = ProptestConfig::with_cases(10);
        run_property("passing", &cfg, &(0u32..100), |x| {
            assert!(x < 100);
            count += 1;
            Ok(())
        });
        assert_eq!(count, 10);
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_input() {
        let cfg = ProptestConfig::with_cases(50);
        run_property("failing", &cfg, &(0u32..10), |x| {
            if x >= 5 {
                return Err(TestCaseError::fail("too big"));
            }
            Ok(())
        });
    }

    #[test]
    #[should_panic(expected = "prop_assume")]
    fn pathological_assume_gives_up() {
        let cfg = ProptestConfig::with_cases(5);
        run_property("rejecting", &cfg, &(0u32..10), |_| {
            Err(TestCaseError::Reject)
        });
    }
}
