//! Offline vendored stand-in for the `criterion` crate.
//!
//! Implements the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `Throughput`, `black_box`, `criterion_group!`,
//! `criterion_main!`) with a simple wall-clock harness: a warm-up run,
//! then `sample_size` timed samples, reporting min / median / max per
//! benchmark. No plots, no statistics beyond that — enough to compare
//! hot paths across commits offline.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter` identifier.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 20,
            throughput: None,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, mut f: F) {
        run_benchmark(&id.to_string(), 20, None, |b| f(b));
    }
}

/// A group of benchmarks sharing throughput and sampling settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Declares the work performed per iteration.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmarks `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b));
        self
    }

    /// Benchmarks `f` against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_benchmark(&label, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// Finishes the group (report flushing is immediate here, so this is
    /// a no-op kept for API compatibility).
    pub fn finish(self) {}
}

/// Timing handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    /// Times repeated calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples
            .push(start.elapsed() / self.iters_per_sample as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    // Warm-up sample to settle caches and pick an iteration count that
    // keeps each sample around a few milliseconds.
    let mut warm = Bencher {
        samples: Vec::new(),
        iters_per_sample: 1,
    };
    f(&mut warm);
    let per_iter = warm.samples.first().copied().unwrap_or(Duration::ZERO);
    let iters = if per_iter > Duration::from_millis(5) || per_iter.is_zero() {
        1
    } else {
        (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 10_000) as u64
    };

    let mut bencher = Bencher {
        samples: Vec::new(),
        iters_per_sample: iters,
    };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    bencher.samples.sort_unstable();
    let min = bencher.samples.first().copied().unwrap_or_default();
    let med = bencher.samples[bencher.samples.len() / 2];
    let max = bencher.samples.last().copied().unwrap_or_default();
    match throughput {
        Some(Throughput::Elements(n)) => {
            let rate = n as f64 / med.as_secs_f64().max(f64::MIN_POSITIVE);
            println!("{label:<48} {min:>10.2?} {med:>10.2?} {max:>10.2?}  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) => {
            let rate = n as f64 / med.as_secs_f64().max(f64::MIN_POSITIVE) / 1e6;
            println!("{label:<48} {min:>10.2?} {med:>10.2?} {max:>10.2?}  ({rate:.1} MB/s)");
        }
        None => println!("{label:<48} {min:>10.2?} {med:>10.2?} {max:>10.2?}"),
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($group, $($target),+);
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
