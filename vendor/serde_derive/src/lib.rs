//! `#[derive(Serialize, Deserialize)]` for the vendored serde facade.
//!
//! The offline build container has no `syn`/`quote`, so this macro parses
//! the item declaration directly from the `proc_macro` token stream and
//! emits the generated impl as a string. It supports the shapes that occur
//! in this workspace: structs with named fields, tuple structs, unit
//! structs, and enums with unit / tuple / struct variants, plus generics
//! with simple bounds and the `#[serde(skip)]` / `#[serde(default)]`
//! field attributes.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl parses")
}

// ---------------------------------------------------------------- model

struct Item {
    name: String,
    generics: Vec<Param>,
    kind: Kind,
}

enum Kind {
    NamedStruct(Vec<Field>),
    TupleStruct(Vec<Field>),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Param {
    /// Parameter name alone (`T`, `'a`, `N`).
    name: String,
    /// Full declaration including bounds (`T: Ord`, `const N: usize`).
    decl: String,
    /// Whether this is a type parameter (gets the serde bound added).
    is_type: bool,
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    shape: VariantShape,
}

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

// --------------------------------------------------------------- parser

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    skip_attrs_and_vis(&tokens, &mut i);
    let kw = expect_ident(&tokens, &mut i);
    let name = expect_ident(&tokens, &mut i);
    let generics = parse_generics(&tokens, &mut i);

    let kind = match kw.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Kind::TupleStruct(parse_tuple_fields(g.stream()))
            }
            _ => Kind::UnitStruct,
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Kind::Enum(parse_variants(g.stream()))
            }
            _ => panic!("enum without a body"),
        },
        other => panic!("derive only supports struct/enum, found `{other}`"),
    };

    Item {
        name,
        generics,
        kind,
    }
}

/// Advances past `#[...]` attributes and `pub` / `pub(...)` visibility.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 2; // '#' and the bracket group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return,
        }
    }
}

/// Like [`skip_attrs_and_vis`] but reports whether a skipped attribute was
/// `#[serde(skip)]` / `#[serde(default)]`.
fn skip_field_attrs(tokens: &[TokenTree], i: &mut usize) -> (bool, bool) {
    let (mut skip, mut default) = (false, false);
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if let Some(TokenTree::Group(g)) = tokens.get(*i + 1) {
                    let attr = g.stream().to_string();
                    if attr.starts_with("serde") {
                        if attr.contains("skip") {
                            skip = true;
                        }
                        if attr.contains("default") {
                            default = true;
                        }
                    }
                }
                *i += 2;
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(*i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        *i += 1;
                    }
                }
            }
            _ => return (skip, default),
        }
    }
}

fn expect_ident(tokens: &[TokenTree], i: &mut usize) -> String {
    match tokens.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("expected identifier, found {other:?}"),
    }
}

/// Parses `<...>` generic parameters if present.
fn parse_generics(tokens: &[TokenTree], i: &mut usize) -> Vec<Param> {
    match tokens.get(*i) {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {}
        _ => return Vec::new(),
    }
    *i += 1;
    let mut depth = 1usize;
    let mut params = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    while depth > 0 {
        let tok = tokens
            .get(*i)
            .unwrap_or_else(|| panic!("unclosed generics"))
            .clone();
        *i += 1;
        match &tok {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                depth += 1;
                current.push(tok);
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                depth -= 1;
                if depth > 0 {
                    current.push(tok);
                }
            }
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 1 => {
                params.push(make_param(&current));
                current.clear();
            }
            _ => current.push(tok),
        }
    }
    if !current.is_empty() {
        params.push(make_param(&current));
    }
    params
}

fn make_param(tokens: &[TokenTree]) -> Param {
    let decl = render(tokens);
    let is_lifetime = matches!(tokens.first(), Some(TokenTree::Punct(p)) if p.as_char() == '\'');
    let is_const =
        matches!(tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "const");
    let name = if is_lifetime {
        render(&tokens[..2])
    } else if is_const {
        match tokens.get(1) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("malformed const parameter: {other:?}"),
        }
    } else {
        match tokens.first() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("malformed generic parameter: {other:?}"),
        }
    };
    Param {
        name,
        decl,
        is_type: !is_lifetime && !is_const,
    }
}

fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (skip, default) = skip_field_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn parse_tuple_fields(body: TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut fields = Vec::new();
    while i < tokens.len() {
        let (skip, default) = skip_field_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        skip_type(&tokens, &mut i);
        fields.push(Field {
            name: fields.len().to_string(),
            skip,
            default,
        });
    }
    fields
}

/// Advances past a type, stopping after the top-level `,` (or at the end).
fn skip_type(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0usize;
    while let Some(tok) = tokens.get(*i) {
        match tok {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = body.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = expect_ident(&tokens, &mut i);
        let shape = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantShape::Tuple(parse_tuple_fields(g.stream()).len())
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantShape::Named(
                    parse_named_fields(g.stream())
                        .into_iter()
                        .map(|f| f.name)
                        .collect(),
                )
            }
            _ => VariantShape::Unit,
        };
        // Skip an explicit discriminant and the trailing comma.
        let mut depth = 0usize;
        while let Some(tok) = tokens.get(i) {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' && depth > 0 => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn render(tokens: &[TokenTree]) -> String {
    tokens
        .iter()
        .map(|t| t.to_string())
        .collect::<Vec<_>>()
        .join(" ")
}

// -------------------------------------------------------------- codegen

fn impl_header(item: &Item, trait_path: &str) -> String {
    if item.generics.is_empty() {
        return format!("impl {trait_path} for {} ", item.name);
    }
    let impl_params: Vec<String> = item
        .generics
        .iter()
        .map(|p| {
            if p.is_type {
                if p.decl.contains(':') {
                    format!("{} + {trait_path}", p.decl)
                } else {
                    format!("{}: {trait_path}", p.decl)
                }
            } else {
                p.decl.clone()
            }
        })
        .collect();
    let ty_params: Vec<String> = item.generics.iter().map(|p| p.name.clone()).collect();
    format!(
        "impl<{}> {trait_path} for {}<{}> ",
        impl_params.join(", "),
        item.name,
        ty_params.join(", ")
    )
}

fn gen_serialize(item: &Item) -> String {
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str(
                "let mut fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n",
            );
            for f in fields {
                if f.skip {
                    continue;
                }
                body.push_str(&format!(
                    "fields.push((\"{0}\".to_string(), \
                     ::serde::Serialize::serialize_value(&self.{0})));\n",
                    f.name
                ));
            }
            body.push_str("::serde::Value::Object(fields)\n");
        }
        Kind::TupleStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 {
                body.push_str(&format!(
                    "::serde::Serialize::serialize_value(&self.{})\n",
                    live[0].name
                ));
            } else {
                let items: Vec<String> = live
                    .iter()
                    .map(|f| format!("::serde::Serialize::serialize_value(&self.{})", f.name))
                    .collect();
                body.push_str(&format!(
                    "::serde::Value::Array(vec![{}])\n",
                    items.join(", ")
                ));
            }
        }
        Kind::UnitStruct => body.push_str("::serde::Value::Null\n"),
        Kind::Enum(variants) => {
            body.push_str("match self {\n");
            for v in variants {
                let ty = &item.name;
                let name = &v.name;
                match &v.shape {
                    VariantShape::Unit => body.push_str(&format!(
                        "{ty}::{name} => ::serde::Value::Str(\"{name}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|k| format!("f{k}")).collect();
                        let inner = if *n == 1 {
                            "::serde::Serialize::serialize_value(f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", items.join(", "))
                        };
                        body.push_str(&format!(
                            "{ty}::{name}({}) => ::serde::Value::Object(vec![(\"{name}\"\
                             .to_string(), {inner})]),\n",
                            binds.join(", ")
                        ));
                    }
                    VariantShape::Named(field_names) => {
                        let items: Vec<String> = field_names
                            .iter()
                            .map(|f| {
                                format!(
                                    "(\"{f}\".to_string(), \
                                     ::serde::Serialize::serialize_value({f}))"
                                )
                            })
                            .collect();
                        body.push_str(&format!(
                            "{ty}::{name} {{ {} }} => ::serde::Value::Object(vec![(\"{name}\"\
                             .to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            field_names.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "#[automatically_derived]\n{}{{\n fn serialize_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n",
        impl_header(item, "::serde::Serialize")
    )
}

fn gen_deserialize(item: &Item) -> String {
    let ty = &item.name;
    let mut body = String::new();
    match &item.kind {
        Kind::NamedStruct(fields) => {
            body.push_str(
                "if v.as_object().is_none() { \
                 return ::std::result::Result::Err(::serde::DeError::expected(\"object\", v)); }\n",
            );
            body.push_str(&format!("::std::result::Result::Ok({ty} {{\n"));
            for f in fields {
                if f.skip {
                    body.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else if f.default {
                    body.push_str(&format!(
                        "{0}: match v.get(\"{0}\") {{ \
                         ::std::option::Option::Some(x) => \
                         ::serde::Deserialize::deserialize_value(x)?, \
                         ::std::option::Option::None => ::std::default::Default::default() }},\n",
                        f.name
                    ));
                } else {
                    body.push_str(&format!(
                        "{0}: match v.get(\"{0}\") {{ \
                         ::std::option::Option::Some(x) => \
                         ::serde::Deserialize::deserialize_value(x)?, \
                         ::std::option::Option::None => return ::std::result::Result::Err(\
                         ::serde::DeError::missing_field(\"{0}\", \"{ty}\")) }},\n",
                        f.name
                    ));
                }
            }
            body.push_str("})\n");
        }
        Kind::TupleStruct(fields) => {
            let live: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if live.len() == 1 && fields.len() == 1 {
                body.push_str(&format!(
                    "::std::result::Result::Ok({ty}(::serde::Deserialize::deserialize_value(v)?))\n"
                ));
            } else {
                body.push_str(&format!(
                    "match v {{ ::serde::Value::Array(xs) if xs.len() == {n} => {{ \
                     ::std::result::Result::Ok({ty}(",
                    n = live.len()
                ));
                for (k, _) in live.iter().enumerate() {
                    body.push_str(&format!(
                        "::serde::Deserialize::deserialize_value(&xs[{k}])?, "
                    ));
                }
                body.push_str(
                    ")) }, _ => ::std::result::Result::Err(\
                     ::serde::DeError::expected(\"array\", v)) }\n",
                );
            }
        }
        Kind::UnitStruct => {
            body.push_str(&format!("::std::result::Result::Ok({ty})\n"));
        }
        Kind::Enum(variants) => {
            // Unit variants arrive as strings; data variants as
            // single-key objects (serde's externally-tagged convention).
            body.push_str("match v {\n::serde::Value::Str(s) => match s.as_str() {\n");
            for v in variants {
                if matches!(v.shape, VariantShape::Unit) {
                    body.push_str(&format!(
                        "\"{0}\" => ::std::result::Result::Ok({ty}::{0}),\n",
                        v.name
                    ));
                }
            }
            body.push_str(&format!(
                "other => ::std::result::Result::Err(\
                 ::serde::DeError::unknown_variant(other, \"{ty}\")),\n}},\n"
            ));
            body.push_str("_ => {\n");
            for v in variants {
                let name = &v.name;
                match &v.shape {
                    VariantShape::Unit => {}
                    VariantShape::Tuple(n) => {
                        if *n == 1 {
                            body.push_str(&format!(
                                "if let ::std::option::Option::Some(x) = v.get(\"{name}\") {{ \
                                 return ::std::result::Result::Ok({ty}::{name}(\
                                 ::serde::Deserialize::deserialize_value(x)?)); }}\n"
                            ));
                        } else {
                            body.push_str(&format!(
                                "if let ::std::option::Option::Some(\
                                 ::serde::Value::Array(xs)) = v.get(\"{name}\") {{ \
                                 if xs.len() == {n} {{ \
                                 return ::std::result::Result::Ok({ty}::{name}("
                            ));
                            for k in 0..*n {
                                body.push_str(&format!(
                                    "::serde::Deserialize::deserialize_value(&xs[{k}])?, "
                                ));
                            }
                            body.push_str(")); } }\n");
                        }
                    }
                    VariantShape::Named(field_names) => {
                        body.push_str(&format!(
                            "if let ::std::option::Option::Some(inner) = v.get(\"{name}\") {{ \
                             return ::std::result::Result::Ok({ty}::{name} {{"
                        ));
                        for f in field_names {
                            body.push_str(&format!(
                                "{f}: match inner.get(\"{f}\") {{ \
                                 ::std::option::Option::Some(x) => \
                                 ::serde::Deserialize::deserialize_value(x)?, \
                                 ::std::option::Option::None => \
                                 return ::std::result::Result::Err(\
                                 ::serde::DeError::missing_field(\"{f}\", \"{ty}\")) }},"
                            ));
                        }
                        body.push_str("}); }\n");
                    }
                }
            }
            body.push_str(&format!(
                "::std::result::Result::Err(::serde::DeError::expected(\
                 \"variant of {ty}\", v))\n}},\n}}\n"
            ));
        }
    }
    format!(
        "#[automatically_derived]\n{}{{\n fn deserialize_value(v: &::serde::Value) -> \
         ::std::result::Result<Self, ::serde::DeError> {{\n{body}}}\n}}\n",
        impl_header(item, "::serde::Deserialize")
    )
}
