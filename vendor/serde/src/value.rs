//! The JSON-like data model shared by the vendored `serde` and
//! `serde_json` crates.

use std::fmt;

/// A JSON-shaped value tree.
///
/// Integer values keep their signedness so `u64` counts and `i64`
/// timestamps round-trip exactly instead of passing through `f64`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative (or small signed) integer.
    I64(i64),
    /// Non-negative integer.
    U64(u64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Object: insertion-ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Looks up `key` in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// One-word description of the variant, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::I64(_) | Value::U64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] does not match the expected shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// A free-form deserialization error.
    pub fn new(message: impl Into<String>) -> Self {
        DeError {
            message: message.into(),
        }
    }

    /// "Expected X, found Y" error for a mismatched value.
    pub fn expected(what: &str, found: &Value) -> Self {
        DeError::new(format!("expected {what}, found {}", found.kind()))
    }

    /// Error for a struct field absent from the input object.
    pub fn missing_field(field: &str, ty: &str) -> Self {
        DeError::new(format!("missing field `{field}` for {ty}"))
    }

    /// Error for an enum variant name not known to the type.
    pub fn unknown_variant(variant: &str, ty: &str) -> Self {
        DeError::new(format!("unknown variant `{variant}` for {ty}"))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}
