//! Offline vendored stand-in for the `serde` crate.
//!
//! The build container has no network access and an empty cargo registry,
//! so the real serde cannot be fetched. This crate provides the subset the
//! workspace actually uses: `#[derive(Serialize, Deserialize)]` on plain
//! structs and enums, routed through a JSON-like [`Value`] tree that
//! `serde_json` (also vendored) prints and parses.
//!
//! The trait shape is deliberately simpler than real serde (no `Serializer`
//! visitor machinery): `Serialize` renders to a [`Value`], `Deserialize`
//! reads from one. That is sufficient for every call site in the workspace,
//! which only ever round-trips through `serde_json` strings.

pub mod value;

pub use serde_derive::{Deserialize, Serialize};
pub use value::{DeError, Value};

/// Types renderable to a [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a [`Value`].
    fn serialize_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`], reporting shape mismatches.
    fn deserialize_value(v: &Value) -> Result<Self, DeError>;
}

macro_rules! ser_int {
    ($($t:ty => $variant:ident as $cast:ty),* $(,)?) => {$(
        impl Serialize for $t {
            fn serialize_value(&self) -> Value {
                Value::$variant(*self as $cast)
            }
        }
        impl Deserialize for $t {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match *v {
                    Value::I64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::U64(x) => <$t>::try_from(x)
                        .map_err(|_| DeError::expected(stringify!($t), v)),
                    Value::F64(x) if x.fract() == 0.0 => Ok(x as $t),
                    _ => Err(DeError::expected(stringify!($t), v)),
                }
            }
        }
    )*};
}

ser_int!(
    u8 => U64 as u64, u16 => U64 as u64, u32 => U64 as u64,
    u64 => U64 as u64, usize => U64 as u64,
    i8 => I64 as i64, i16 => I64 as i64, i32 => I64 as i64,
    i64 => I64 as i64, isize => I64 as i64,
);

impl Serialize for f64 {
    fn serialize_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::F64(x) => Ok(x),
            Value::I64(x) => Ok(x as f64),
            Value::U64(x) => Ok(x as f64),
            _ => Err(DeError::expected("f64", v)),
        }
    }
}

impl Serialize for f32 {
    fn serialize_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        f64::deserialize_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn serialize_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match *v {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", v)),
        }
    }
}

impl Serialize for String {
    fn serialize_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", v)),
        }
    }
}

impl Serialize for str {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl Serialize for char {
    fn serialize_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| DeError::expected("char", v))
            }
            _ => Err(DeError::expected("char", v)),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize_value(&self) -> Value {
        match self {
            Some(x) => x.serialize_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::deserialize_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Default + Copy, const N: usize> Deserialize for [T; N] {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) if xs.len() == N => {
                let mut out = [T::default(); N];
                for (slot, x) in out.iter_mut().zip(xs) {
                    *slot = T::deserialize_value(x)?;
                }
                Ok(out)
            }
            _ => Err(DeError::expected("fixed-size array", v)),
        }
    }
}

macro_rules! ser_tuple {
    ($(($($n:tt $t:ident),+)),+ $(,)?) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize_value(&self) -> Value {
                Value::Array(vec![$(self.$n.serialize_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(xs) if xs.len() == ser_tuple!(@count $($t)+) => {
                        Ok(($($t::deserialize_value(&xs[$n])?,)+))
                    }
                    _ => Err(DeError::expected("tuple array", v)),
                }
            }
        }
    )+};
    (@count $($t:ident)+) => { [$(ser_tuple!(@one $t)),+].len() };
    (@one $t:ident) => { () };
}

ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
);

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::hash::Hash;

// Maps and sets serialize as arrays of entries so non-string keys work.
impl<K: Serialize, V: Serialize, S> Serialize for HashMap<K, V, S> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Eq + Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        entries(v)?.into_iter().collect::<Result<_, _>>()
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize_value(&self) -> Value {
        Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![k.serialize_value(), v.serialize_value()]))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        entries(v)?.into_iter().collect::<Result<_, _>>()
    }
}

type EntryIter<K, V> = Vec<Result<(K, V), DeError>>;

fn entries<K: Deserialize, V: Deserialize>(v: &Value) -> Result<EntryIter<K, V>, DeError> {
    match v {
        Value::Array(xs) => Ok(xs
            .iter()
            .map(|e| match e {
                Value::Array(kv) if kv.len() == 2 => {
                    Ok((K::deserialize_value(&kv[0])?, V::deserialize_value(&kv[1])?))
                }
                _ => Err(DeError::expected("[key, value] pair", e)),
            })
            .collect()),
        _ => Err(DeError::expected("array of pairs", v)),
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize, S> Serialize for HashSet<T, S> {
    fn serialize_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::serialize_value).collect())
    }
}
impl<T: Deserialize + Eq + Hash> Deserialize for HashSet<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(xs) => xs.iter().map(T::deserialize_value).collect(),
            _ => Err(DeError::expected("array", v)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize_value(&self) -> Value {
        (**self).serialize_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        T::deserialize_value(v).map(Box::new)
    }
}

impl Serialize for Value {
    fn serialize_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn deserialize_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}
