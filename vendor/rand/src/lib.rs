//! Offline vendored stand-in for the `rand` crate (0.8 API subset).
//!
//! Implements exactly the surface this workspace uses: `rngs::StdRng`
//! (a deterministic xoshiro256++ generator — *not* the same stream as the
//! real StdRng, which is fine because all in-repo consumers are seeded
//! simulations validated by statistical properties, not golden values),
//! the `Rng` extension trait (`gen_range`, `gen_bool`, `gen`), the
//! `SeedableRng` constructors, and `seq::SliceRandom` (`choose`,
//! `shuffle`).

use std::ops::{Range, RangeInclusive};

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// The seed array type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator by expanding a 64-bit seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing convenience methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics when the range is empty, matching rand 0.8.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// Panics unless `0 ≤ p ≤ 1`, matching rand 0.8.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p = {p} out of range");
        unit_f64(self.next_u64()) < p
    }

    /// A uniformly random value of a primitive type.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::gen_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types producible by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples one value from the standard distribution of the type.
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}
impl Standard for u32 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}
impl Standard for bool {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}
impl Standard for f64 {
    fn gen_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Maps 64 random bits to `[0, 1)` with 53-bit precision.
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 / (1u64 << 53) as f64
}

/// Ranges that [`Rng::gen_range`] can sample from.
///
/// Implemented generically over [`SampleUniform`] so that type inference
/// unifies the range's element type with `gen_range`'s result type, as
/// real rand does (`t + rng.gen_range(3..12)` types the literals as the
/// type of `t`).
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Types uniformly samplable from a bounded range.
pub trait SampleUniform: Sized {
    /// Samples from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_bounded<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_bounded(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + Clone> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_bounded(self.start().clone(), self.end().clone(), true, rng)
    }
}

macro_rules! int_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounded<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) + i128::from(inclusive);
                assert!(span > 0, "gen_range: empty range");
                let offset = (u128::from(rng.next_u64()) * span as u128) >> 64;
                (lo as i128 + offset as i128) as $t
            }
        }
    )*};
}

int_uniform!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_bounded<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi },
                    "gen_range: empty range");
                let u = unit_f64(rng.next_u64()) as $t;
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_uniform!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut seed: u64) -> Self {
            // SplitMix64 expansion, the reference seeding procedure.
            let mut next = || {
                seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(chunk);
                s[i] = u64::from_le_bytes(bytes);
            }
            if s.iter().all(|&w| w == 0) {
                return StdRng::from_state(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            StdRng::from_state(state)
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` for an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher-Yates shuffle in place.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// `amount` distinct elements in random order (all of them, when
        /// the slice is shorter than `amount`).
        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(rng.gen_range(0..self.len()))
            }
        }

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }

        fn choose_multiple<R: RngCore>(
            &self,
            rng: &mut R,
            amount: usize,
        ) -> std::vec::IntoIter<&T> {
            // Partial Fisher-Yates over an index vector.
            let mut idx: Vec<usize> = (0..self.len()).collect();
            let take = amount.min(self.len());
            for i in 0..take {
                let j = rng.gen_range(i..idx.len());
                idx.swap(i, j);
            }
            idx.truncate(take);
            idx.into_iter()
                .map(|i| &self[i])
                .collect::<Vec<_>>()
                .into_iter()
        }
    }
}

/// Commonly imported names, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25..0.75f64);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "rate = {rate}");
    }

    #[test]
    fn shuffle_permutes_and_choose_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut xs: Vec<u32> = (0..50).collect();
        xs.shuffle(&mut rng);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(*[1u32, 2, 3, 4].choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
    }
}
