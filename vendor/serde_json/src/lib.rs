//! Offline vendored stand-in for `serde_json`.
//!
//! Prints and parses the [`serde::Value`] tree produced by the vendored
//! serde facade. Supports the full JSON grammar (objects, arrays, strings
//! with escapes, numbers, booleans, null); numbers keep integer identity
//! where possible so `u64`/`i64` fields round-trip exactly.

use serde::{Deserialize, Serialize};
use std::fmt;

pub use serde::Value;

/// Error from JSON printing or parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error::new(e.to_string())
    }
}

/// Result alias matching real serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), None, 0);
    Ok(out)
}

/// Serializes `value` to an indented JSON string.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize_value(), Some(2), 0);
    Ok(out)
}

/// Converts `value` into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.serialize_value())
}

/// Rebuilds a `T` from a [`Value`] tree.
pub fn from_value<T: Deserialize>(value: Value) -> Result<T> {
    Ok(T::deserialize_value(&value)?)
}

/// Parses JSON text into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let value = parse_value(s)?;
    Ok(T::deserialize_value(&value)?)
}

// -------------------------------------------------------------- printer

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that
                // round-trips, always with a decimal point or exponent.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(xs) => {
            out.push('[');
            for (i, x) in xs.iter().enumerate() {
                open_item(out, indent, level);
                write_value(out, x, indent, level + 1);
                if i + 1 < xs.len() {
                    out.push(',');
                }
            }
            close_seq(out, indent, level, xs.is_empty());
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (k, x)) in fields.iter().enumerate() {
                open_item(out, indent, level);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, x, indent, level + 1);
                if i + 1 < fields.len() {
                    out.push(',');
                }
            }
            close_seq(out, indent, level, fields.is_empty());
            out.push('}');
        }
    }
}

fn open_item(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * (level + 1)));
    }
}

fn close_seq(out: &mut String, indent: Option<usize>, level: usize, empty: bool) {
    if !empty {
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * level));
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// --------------------------------------------------------------- parser

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
pub fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error::new(format!("bad object at byte {}", self.pos))),
            }
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::new(format!("bad array at byte {}", self.pos))),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::new("truncated \\u escape"))?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::new("bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::new("bad \\u escape"))?;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("bad \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("bad escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode the UTF-8 sequence starting at this byte.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::new("truncated UTF-8"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::new("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        for text in ["null", "true", "false", "0", "-7", "18446744073709551615"] {
            let v = parse_value(text).unwrap();
            let mut out = String::new();
            write_value(&mut out, &v, None, 0);
            assert_eq!(out, text);
        }
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse_value(r#"{"a": [1, 2.5, "x\ny"], "b": {"c": null}}"#).unwrap();
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        match v.get("a") {
            Some(Value::Array(xs)) => {
                assert_eq!(xs[0], Value::U64(1));
                assert_eq!(xs[1], Value::F64(2.5));
                assert_eq!(xs[2], Value::Str("x\ny".into()));
            }
            other => panic!("bad array: {other:?}"),
        }
    }

    #[test]
    fn pretty_output_is_reparseable() {
        let v = parse_value(r#"{"xs": [1, 2], "name": "log \"dep\""}"#).unwrap();
        let mut out = String::new();
        write_value(&mut out, &v, Some(2), 0);
        assert_eq!(parse_value(&out).unwrap(), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for text in ["", "{", "[1,", "\"abc", "{\"a\" 1}", "01x", "nul"] {
            assert!(parse_value(text).is_err(), "{text:?} should fail");
        }
    }
}
