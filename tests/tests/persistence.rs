//! Persistence round trips across crates: simulated logs through the
//! TSV codec and the service directory through its XML document, with
//! mining results invariant under the round trip.

use logdep::l3::{run_l3, L3Config};
use logdep_logstore::codec::{read_store, write_store};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::{simulate, ServiceDirectory, SimConfig};

#[test]
fn tsv_round_trip_preserves_l3_results() {
    let out = simulate(&SimConfig::small_test(3));
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let range = TimeRange::new(Millis(0), Millis::from_days(2));
    let before = run_l3(&out.store, range, &ids, &L3Config::default()).expect("L3");

    let mut buf = Vec::new();
    write_store(&mut buf, &out.store).expect("serialize");
    let (parsed, errors) = read_store(buf.as_slice()).expect("parse");
    assert!(errors.is_empty(), "codec errors: {errors:?}");
    assert_eq!(parsed.len(), out.store.len());

    let after = run_l3(&parsed, range, &ids, &L3Config::default()).expect("L3 again");
    // Source ids may differ between registries; compare by name.
    let names = |store: &logdep_logstore::LogStore, detected: &logdep::AppServiceModel| {
        let mut v: Vec<(String, usize)> = detected
            .iter()
            .map(|(app, svc)| (store.registry.source_name(app).to_owned(), svc))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        names(&out.store, &before.detected),
        names(&parsed, &after.detected)
    );
}

#[test]
fn directory_xml_round_trip_preserves_mining_input() {
    let out = simulate(&SimConfig::small_test(4));
    let xml = out.directory.to_xml();
    let parsed = ServiceDirectory::from_xml(&xml).expect("directory parses");
    assert_eq!(parsed, out.directory);
    assert_eq!(parsed.ids(), out.directory.ids());
}

#[test]
fn tsv_preserves_session_context() {
    let out = simulate(&SimConfig::small_test(5));
    let mut buf = Vec::new();
    write_store(&mut buf, &out.store).expect("serialize");
    let (parsed, _) = read_store(buf.as_slice()).expect("parse");

    let ctx =
        |s: &logdep_logstore::LogStore| s.records().iter().filter(|r| r.has_session_info()).count();
    assert_eq!(ctx(&out.store), ctx(&parsed));

    // Session reconstruction agrees in shape.
    let cfg = logdep_sessions::SessionConfig::default();
    let a = logdep_sessions::reconstruct(&out.store, &cfg);
    let b = logdep_sessions::reconstruct(&parsed, &cfg);
    assert_eq!(a.stats.n_sessions, b.stats.n_sessions);
    assert_eq!(a.stats.assigned_logs, b.stats.assigned_logs);
}
