//! Persistence round trips across crates: simulated logs through the
//! TSV codec and the service directory through its XML document, with
//! mining results invariant under the round trip.

use logdep::l3::{run_l3, L3Config};
use logdep_logstore::codec::{read_store, write_store};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::{simulate, ServiceDirectory, SimConfig};

#[test]
fn tsv_round_trip_preserves_l3_results() {
    let out = simulate(&SimConfig::small_test(3));
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let range = TimeRange::new(Millis(0), Millis::from_days(2));
    let before = run_l3(&out.store, range, &ids, &L3Config::default()).expect("L3");

    let mut buf = Vec::new();
    write_store(&mut buf, &out.store).expect("serialize");
    let (parsed, errors) = read_store(buf.as_slice()).expect("parse");
    assert!(errors.is_empty(), "codec errors: {errors:?}");
    assert_eq!(parsed.len(), out.store.len());

    let after = run_l3(&parsed, range, &ids, &L3Config::default()).expect("L3 again");
    // Source ids may differ between registries; compare by name.
    let names = |store: &logdep_logstore::LogStore, detected: &logdep::AppServiceModel| {
        let mut v: Vec<(String, usize)> = detected
            .iter()
            .map(|(app, svc)| (store.registry.source_name(app).to_owned(), svc))
            .collect();
        v.sort();
        v
    };
    assert_eq!(
        names(&out.store, &before.detected),
        names(&parsed, &after.detected)
    );
}

#[test]
fn directory_xml_round_trip_preserves_mining_input() {
    let out = simulate(&SimConfig::small_test(4));
    let xml = out.directory.to_xml();
    let parsed = ServiceDirectory::from_xml(&xml).expect("directory parses");
    assert_eq!(parsed, out.directory);
    assert_eq!(parsed.ids(), out.directory.ids());
}

#[test]
fn tsv_preserves_session_context() {
    let out = simulate(&SimConfig::small_test(5));
    let mut buf = Vec::new();
    write_store(&mut buf, &out.store).expect("serialize");
    let (parsed, _) = read_store(buf.as_slice()).expect("parse");

    let ctx =
        |s: &logdep_logstore::LogStore| s.records().iter().filter(|r| r.has_session_info()).count();
    assert_eq!(ctx(&out.store), ctx(&parsed));

    // Session reconstruction agrees in shape.
    let cfg = logdep_sessions::SessionConfig::default();
    let a = logdep_sessions::reconstruct(&out.store, &cfg);
    let b = logdep_sessions::reconstruct(&parsed, &cfg);
    assert_eq!(a.stats.n_sessions, b.stats.n_sessions);
    assert_eq!(a.stats.assigned_logs, b.stats.assigned_logs);
}

// --- durable-store edge cases, driven through the CLI in-process ---

fn cli(args: &[&str]) -> (i32, String) {
    let argv: Vec<String> = args.iter().map(|s| s.to_string()).collect();
    let mut out = Vec::new();
    let code = logdep_cli::run(&argv, &mut out);
    (code, String::from_utf8(out).expect("utf8 output"))
}

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("logdep-persist-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

#[test]
fn cache_verify_accepts_an_absent_store() {
    let dir = scratch("verify-empty");
    // A path that was never written: nothing to verify is not damage —
    // the operator gets a clean bill, not a false alarm.
    let missing = dir.join("never-written.ck").to_string_lossy().into_owned();
    let (code, out) = cli(&["cache", "verify", "--cache", &missing]);
    assert_eq!(code, 0, "verify flagged a store that never existed: {out}");
    assert!(out.contains("verify: clean"), "{out}");
}

#[test]
fn resuming_a_completed_run_emits_no_step_events() {
    let dir = scratch("resume-trace");
    let logs = dir.join("logs.tsv").to_string_lossy().into_owned();
    let directory = dir.join("dir.xml").to_string_lossy().into_owned();
    let (code, out) = cli(&[
        "simulate",
        "--out",
        &logs,
        "--directory",
        &directory,
        "--days",
        "2",
        "--seed",
        "5",
        "--scale",
        "0.15",
    ]);
    assert_eq!(code, 0, "simulate failed: {out}");

    let cache = dir.join("cache.ck").to_string_lossy().into_owned();
    let daily = |extra: &[&str]| {
        let mut args = vec![
            "daily",
            "--logs",
            &logs,
            "--directory",
            &directory,
            "--window-days",
            "1",
            "--steps",
            "2",
            "--cache",
            &cache,
        ];
        args.extend_from_slice(extra);
        cli(&args)
    };

    // Run to completion, then resume the finished run under a trace.
    let (code, out) = daily(&[]);
    assert_eq!(code, 0, "{out}");
    let trace_path = dir.join("resume.jsonl").to_string_lossy().into_owned();
    let (code, out) = daily(&["--resume", "--trace", &trace_path]);
    assert_eq!(code, 0, "{out}");

    let trace = std::fs::read_to_string(&trace_path).expect("trace written");
    // Every step was checkpointed, so a faithful trace records the
    // resume decision and nothing being re-run: duplicate step events
    // here would mean checkpointed days were silently recomputed.
    assert!(
        trace.contains("\"name\":\"durable.resume\"") && trace.contains("\"resumed_from\":2"),
        "no resume point in the trace: {trace}"
    );
    assert!(
        !trace.contains("\"name\":\"daily.step\""),
        "a fully-resumed run re-emitted step events: {trace}"
    );
    // The final window is still *reported* (that part is contractual),
    // but it must be served wholly from the checkpointed cache: a
    // single miss would mean evidence was recomputed after resume.
    let miss_fields = trace.matches("\"misses\":").count();
    assert!(miss_fields > 0, "no cache accounting in the trace: {trace}");
    assert_eq!(
        miss_fields,
        trace.matches("\"misses\":0").count(),
        "the reporting window recomputed evidence: {trace}"
    );
}
