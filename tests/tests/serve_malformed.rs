//! Robustness of the query server against hostile or broken clients:
//! truncated request lines, oversized heads, slowloris partial writes,
//! unknown methods, and connection-limit overflow all get a 4xx/5xx
//! answer (or a clean close) — and the server keeps answering
//! well-formed requests afterwards. Nothing here may panic the server.

use logdep_serve::{HttpClient, ModelIndex, ServeConfig, Server, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Starts a server over an empty index — protocol robustness does not
/// need mined models.
fn start(cfg: ServeConfig) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let server = Server::bind(cfg, ModelIndex::empty(1)).expect("bind loopback");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        logdep_serve::run_server(server, None).expect("serve loop");
    });
    (handle, join)
}

fn short_timeouts() -> ServeConfig {
    ServeConfig {
        workers: 2,
        request_timeout_ms: 200,
        ..ServeConfig::default()
    }
}

/// Sends raw bytes, optionally half-closing the write side, and reads
/// whatever the server answers until it closes the connection.
fn raw_exchange(handle: &ServerHandle, payload: &[u8], shut_write: bool) -> String {
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.write_all(payload).expect("send");
    if shut_write {
        stream
            .shutdown(std::net::Shutdown::Write)
            .expect("shutdown");
    }
    let mut out = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// The server must still answer a well-formed request.
fn assert_still_alive(handle: &ServerHandle) {
    let mut client = HttpClient::connect(handle.addr(), 5_000).expect("connect");
    let (status, body) = client.get("/healthz").expect("healthz");
    assert_eq!(status, 200, "body: {body}");
}

#[test]
fn truncated_request_line_gets_a_clean_answer() {
    let (handle, join) = start(short_timeouts());
    // Half-close after a partial request line: the server sees EOF
    // mid-head and must treat it as a truncated request, not hang or
    // panic. (A 400 answer is best-effort — the client may be gone.)
    let answer = raw_exchange(&handle, b"GET /v1/mo", true);
    assert!(
        answer.is_empty() || answer.starts_with("HTTP/1.1 400"),
        "unexpected answer: {answer:?}"
    );
    // Whole garbage instead of HTTP must be a 400.
    let answer = raw_exchange(&handle, b"th1s 1s n0t http\r\n\r\n", false);
    assert!(answer.starts_with("HTTP/1.1 400"), "answer: {answer:?}");
    assert_still_alive(&handle);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn lowercase_method_and_bad_version_are_rejected() {
    let (handle, join) = start(short_timeouts());
    let answer = raw_exchange(&handle, b"get /healthz HTTP/1.1\r\n\r\n", false);
    assert!(answer.starts_with("HTTP/1.1 400"), "answer: {answer:?}");
    let answer = raw_exchange(&handle, b"GET /healthz HTTP/2.0\r\n\r\n", false);
    assert!(answer.starts_with("HTTP/1.1 400"), "answer: {answer:?}");
    assert_still_alive(&handle);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn oversized_head_is_rejected_with_431() {
    let (handle, join) = start(short_timeouts());
    // 16 KiB of headers with no terminator in sight.
    let mut payload = b"GET /healthz HTTP/1.1\r\n".to_vec();
    for i in 0..400 {
        payload.extend_from_slice(format!("X-Padding-{i}: {}\r\n", "y".repeat(60)).as_bytes());
    }
    let answer = raw_exchange(&handle, &payload, false);
    assert!(answer.starts_with("HTTP/1.1 431"), "answer: {answer:?}");
    assert_still_alive(&handle);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn slowloris_partial_write_times_out_with_408() {
    let (handle, join) = start(short_timeouts());
    // Send half a request line and then go quiet: the socket read
    // deadline (200 ms here) must fire and answer 408 — the worker is
    // not allowed to wait on a dripping client forever.
    let mut stream = TcpStream::connect(handle.addr()).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("read timeout");
    stream.write_all(b"GET /v1/model HT").expect("send half");
    let mut out = Vec::new();
    let mut chunk = [0u8; 1024];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => out.extend_from_slice(&chunk[..n]),
            Err(_) => break,
        }
    }
    let answer = String::from_utf8_lossy(&out).into_owned();
    assert!(answer.starts_with("HTTP/1.1 408"), "answer: {answer:?}");
    assert_still_alive(&handle);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn connection_limit_overflow_answers_503() {
    let (handle, join) = start(ServeConfig {
        workers: 2,
        max_conns: 1,
        request_timeout_ms: 1_000,
        ..ServeConfig::default()
    });
    // Park one connection mid-request to hold the single slot, then
    // connect again: the second connection must be turned away with a
    // 503, not queued behind the slow one.
    let mut parked = TcpStream::connect(handle.addr()).expect("park connect");
    parked.write_all(b"GET /heal").expect("partial");
    std::thread::sleep(Duration::from_millis(50)); // let a worker adopt it
    let mut overflow_seen = false;
    for _ in 0..10 {
        let answer = raw_exchange(&handle, b"GET /healthz HTTP/1.1\r\n\r\n", false);
        if answer.starts_with("HTTP/1.1 503") {
            overflow_seen = true;
            break;
        }
    }
    assert!(overflow_seen, "no 503 despite a parked connection");
    drop(parked);
    assert_still_alive(&handle);
    handle.shutdown();
    join.join().expect("server thread");
}

#[test]
fn unknown_method_and_path_stay_polite() {
    let (handle, join) = start(short_timeouts());
    let answer = raw_exchange(&handle, b"DELETE /v1/model HTTP/1.1\r\n\r\n", false);
    assert!(answer.starts_with("HTTP/1.1 405"), "answer: {answer:?}");
    let mut client = HttpClient::connect(handle.addr(), 5_000).expect("connect");
    let (status, _body) = client.get("/definitely/not/a/route").expect("404 route");
    assert_eq!(status, 404);
    // Keep-alive must survive an application-level 404.
    let (status, _body) = client.get("/healthz").expect("keep-alive");
    assert_eq!(status, 200);
    handle.shutdown();
    join.join().expect("server thread");
}
