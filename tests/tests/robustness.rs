//! Robustness studies: collection interruptions, clock-skew stress and
//! the server-timestamp trap (§4.2/§5 of the paper).

use logdep::l3::{run_l3, L3Config};
use logdep::model::{diff_app_service, AppServiceModel};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, NoiseConfig, SimConfig};

fn mine_l3(out: &logdep_sim::SimOutput) -> (AppServiceModel, AppServiceModel) {
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let svc_ref = AppServiceModel::from_names(
        &out.store.registry,
        &ids,
        out.truth
            .app_service
            .iter()
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )
    .expect("ids resolve");
    let detected = run_l3(
        &out.store,
        TimeRange::new(Millis(0), Millis::from_days(3)),
        &ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3")
    .detected;
    (detected, svc_ref)
}

#[test]
fn l3_survives_collection_interruptions() {
    let mut base_cfg = SimConfig::paper_week(13, 0.2);
    base_cfg.days = 2;
    let base = simulate(&base_cfg);
    assert_eq!(base.stats.dropped_logs, 0);

    let mut gappy_cfg = base_cfg.clone();
    gappy_cfg.noise = NoiseConfig {
        collection_gaps_per_day: 6,
        collection_gap_minutes: 15,
        ..NoiseConfig::paper_taxonomy()
    };
    let gappy = simulate(&gappy_cfg);
    assert!(
        gappy.stats.dropped_logs > 1_000,
        "gaps dropped only {} logs",
        gappy.stats.dropped_logs
    );
    assert!(gappy.store.len() < base.store.len());

    // §5's claim: interruption loses volume but not *information* —
    // repeated interactions are re-observed outside the gaps, so L3's
    // recall barely moves.
    let (d_base, ref_base) = mine_l3(&base);
    let (d_gappy, ref_gappy) = mine_l3(&gappy);
    let recall_base = diff_app_service(&d_base, &ref_base).recall();
    let recall_gappy = diff_app_service(&d_gappy, &ref_gappy).recall();
    assert!(
        recall_gappy > recall_base - 0.05,
        "collection gaps destroyed recall: {recall_gappy:.2} vs {recall_base:.2}"
    );
}

#[test]
fn extreme_clock_skew_degrades_l2_but_not_l3() {
    let mut cfg = SimConfig::paper_week(19, 0.2);
    cfg.days = 1;
    let normal = simulate(&cfg);

    let mut wild = cfg.clone();
    wild.noise.nt_skew_ms = 20_000; // 20 s — far beyond the paper's <1 s
    let skewed = simulate(&wild);

    // L2: on machines with heavy skew the caller/callee adjacency blows
    // past the timeout, so the *bigram evidence* on true pairs thins out
    // (about 30 % of hosts draw the full skew; the rest stay mild, so
    // pair-level detection is more resilient than the evidence mass).
    let l2cfg = logdep::l2::L2Config::default();
    let day = TimeRange::day(0);
    let pair_ref = logdep::PairModel::from_names(
        &normal.store.registry,
        normal
            .truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let true_mass = |out: &logdep_sim::SimOutput| -> u64 {
        let res = logdep::l2::run_l2(&out.store, day, &l2cfg).expect("L2");
        res.bigrams
            .joint
            .iter()
            .filter(|(&(a, b), _)| pair_ref.contains(a, b))
            .map(|(_, &n)| n)
            .sum()
    };
    let mass_normal = true_mass(&normal);
    let mass_skewed = true_mass(&skewed);
    assert!(
        (mass_skewed as f64) < 0.9 * mass_normal as f64,
        "20 s skew should thin true-pair bigram mass: {mass_skewed} vs {mass_normal}"
    );

    // L3 ignores timestamps entirely (within-day granularity).
    let (d_norm, ref_norm) = mine_l3(&normal);
    let (d_skew, ref_skew) = mine_l3(&skewed);
    let r_norm = diff_app_service(&d_norm, &ref_norm).recall();
    let r_skew = diff_app_service(&d_skew, &ref_skew).recall();
    assert!((r_norm - r_skew).abs() < 0.05, "{r_norm:.2} vs {r_skew:.2}");
}

#[test]
fn server_timestamps_are_worse_for_l2_than_client_timestamps() {
    // §4.2: "due to client-side buffering for performance reasons, we
    // can not use the latter [server] timestamp". HUG's clients batch
    // aggressively; rebuild the store with server_ts in place of
    // client_ts under a realistic multi-second buffer and watch L2's
    // true-positive count collapse.
    let mut cfg = SimConfig::paper_week(29, 0.2);
    cfg.days = 1;
    cfg.noise.buffer_delay_ms = 15_000.0;
    let out = simulate(&cfg);

    let mut swapped = logdep_logstore::LogStore::with_registry(out.store.registry.clone());
    for r in out.store.records() {
        let mut r2 = r.clone();
        r2.client_ts = r.server_ts;
        swapped.push(r2);
    }
    swapped.finalize();

    let pair_ref = logdep::PairModel::from_names(
        &out.store.registry,
        out.truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let l2cfg = logdep::l2::L2Config::default();
    let day = TimeRange::day(0);
    let tp = |store: &logdep_logstore::LogStore| {
        let res = logdep::l2::run_l2(store, day, &l2cfg).expect("L2");
        logdep::diff_pairs(&res.detected, &pair_ref).tp()
    };
    let tp_client = tp(&out.store);
    let tp_server = tp(&swapped);
    assert!(
        tp_server * 4 < tp_client * 3,
        "heavily buffered server timestamps should lose a substantial share \
         of true pairs: {tp_server} vs {tp_client}"
    );
}
