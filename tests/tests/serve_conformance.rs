//! Conformance of the query server: the response transcript for a
//! fixed request sequence is byte-identical at `--workers 1` and
//! `--workers 4`, including across a mid-sequence snapshot hot-swap,
//! and concurrent readers racing repeated swaps always observe a
//! complete body from exactly one generation — never a torn mix.

use logdep::{EvidenceCache, PipelineConfig};
use logdep_logstore::SourceId;
use logdep_serve::{HttpClient, IndexPlan, ModelIndex, ServeConfig, Server, ServerHandle};
use logdep_sim::{simulate, SimConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

const DAYS: u32 = 3;

/// Mines a small simulated landscape into an index. The build is fully
/// deterministic, so calling this twice with the same arguments yields
/// byte-identical indexes — which is what lets each server width get
/// its own copy.
fn build_index(seed: u64, failure_rate: f64, generation: u64) -> ModelIndex {
    let mut sim = SimConfig::paper_week(seed, failure_rate);
    sim.days = DAYS;
    let out = simulate(&sim);
    let service_ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let plan = IndexPlan {
        start_day: 0,
        window_days: 1,
        advance_days: 1,
        steps: DAYS as u64,
    };
    let mut cache = EvidenceCache::new();
    ModelIndex::from_store(
        &out.store,
        &service_ids,
        &PipelineConfig::all_defaults(),
        &plan,
        &mut cache,
        generation,
    )
    .expect("index build")
}

fn gen1() -> ModelIndex {
    build_index(11, 0.2, 1)
}

fn gen2() -> ModelIndex {
    build_index(13, 0.3, 2)
}

/// The fixed endpoint matrix, parameterized by names the index knows.
/// `/v1/metrics` goes last: its counters summarize the requests that
/// preceded it, which is the same sequence at every worker width.
fn matrix(index: &ModelIndex) -> Vec<String> {
    let s0 = index.source_label(SourceId(0));
    let s1 = index.source_label(SourceId(1));
    let svc = index
        .service_ids()
        .first()
        .cloned()
        .unwrap_or_else(|| "SVC?".to_owned());
    vec![
        "/healthz".to_owned(),
        "/v1/model".to_owned(),
        "/v1/report".to_owned(),
        format!("/v1/pair?src={s0}&dst={s1}"),
        format!("/v1/pair?src={s0}&dst={svc}"),
        format!("/v1/pair?src=no-such-app&dst={s1}"),
        "/v1/pair?src=only-one-param".to_owned(),
        format!("/v1/impact?app={s0}&depth=2"),
        format!("/v1/impact?app={s0}"),
        "/v1/impact?app=no-such-app".to_owned(),
        "/v1/impact?app=App00&depth=0".to_owned(),
        "/v1/churn?top=3".to_owned(),
        "/v1/churn".to_owned(),
        "/v1/diff?from=day0&to=day1".to_owned(),
        "/v1/diff?from=0&to=2".to_owned(),
        "/v1/diff?from=0&to=99".to_owned(),
        "/v1/no-such-endpoint".to_owned(),
        "/v1/metrics".to_owned(),
    ]
}

fn start(workers: usize, index: ModelIndex) -> (ServerHandle, std::thread::JoinHandle<()>) {
    let cfg = ServeConfig {
        workers,
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, index).expect("bind loopback");
    let handle = server.handle();
    let join = std::thread::spawn(move || {
        logdep_serve::run_server(server, None).expect("serve loop");
    });
    (handle, join)
}

/// Runs the whole conformance sequence against a `workers`-wide server
/// and returns the response transcript: every path's status and body,
/// for generation 1, then again after hot-swapping in generation 2.
fn transcript(workers: usize) -> String {
    let index = gen1();
    let paths = matrix(&index);
    let (handle, join) = start(workers, index);
    let mut client = HttpClient::connect(handle.addr(), 5_000).expect("connect");

    let mut out = String::new();
    for path in &paths {
        let (status, body) = client.get(path).expect("request");
        out.push_str(&format!("{path} -> {status} {body}\n"));
    }

    // Hot-swap mid-sequence: same connection, new generation.
    handle.install(gen2());
    assert_eq!(handle.generation(), 2);
    out.push_str("-- swap --\n");
    for path in &paths {
        let (status, body) = client.get(path).expect("request after swap");
        out.push_str(&format!("{path} -> {status} {body}\n"));
    }

    handle.shutdown();
    join.join().expect("server thread");
    out
}

#[test]
fn transcripts_are_byte_identical_across_worker_widths() {
    let serial = transcript(1);
    let pooled = transcript(4);
    assert!(
        serial == pooled,
        "workers=1 and workers=4 transcripts diverge:\n--- serial ---\n{serial}\n--- pooled ---\n{pooled}"
    );
    // Sanity: the sequence actually exercised both generations and the
    // error paths.
    assert!(serial.contains("\"generation\":1"), "{serial}");
    assert!(serial.contains("\"generation\":2"), "{serial}");
    assert!(serial.contains("-> 404"), "{serial}");
    assert!(serial.contains("-> 400"), "{serial}");
    assert!(serial.contains("\"serve.swaps\":1"), "{serial}");
}

#[test]
fn concurrent_readers_never_observe_torn_swaps() {
    let (index_a, index_b) = (gen1(), gen2());
    let pair_path = {
        let paths = matrix(&index_a);
        paths
            .iter()
            .find(|p| p.starts_with("/v1/pair?src=") && !p.contains("no-such"))
            .expect("pair path")
            .clone()
    };
    let (handle, join) = start(4, index_a.clone());

    // The two legal bodies: one per generation.
    let mut probe = HttpClient::connect(handle.addr(), 5_000).expect("connect");
    let (status, body_gen1) = probe.get(&pair_path).expect("probe gen1");
    assert_eq!(status, 200);
    handle.install(index_b.clone());
    let (status, body_gen2) = probe.get(&pair_path).expect("probe gen2");
    assert_eq!(status, 200);
    assert_ne!(body_gen1, body_gen2, "generations must be observable");

    let stop = Arc::new(AtomicBool::new(false));
    let mut readers = Vec::new();
    for _ in 0..4 {
        let stop = Arc::clone(&stop);
        let addr = handle.addr();
        let path = pair_path.clone();
        let (b1, b2) = (body_gen1.clone(), body_gen2.clone());
        readers.push(std::thread::spawn(move || {
            let mut client = HttpClient::connect(addr, 5_000).expect("reader connect");
            let mut seen = 0u64;
            while !stop.load(Ordering::SeqCst) {
                let (status, body) = client.get(&path).expect("reader request");
                assert_eq!(status, 200);
                assert!(
                    body == b1 || body == b2,
                    "torn or foreign body observed:\n{body}"
                );
                seen += 1;
            }
            seen
        }));
    }

    // Swap back and forth under the readers.
    for round in 0..20 {
        if round % 2 == 0 {
            handle.install(index_a.clone());
        } else {
            handle.install(index_b.clone());
        }
        std::thread::sleep(std::time::Duration::from_millis(5));
    }
    stop.store(true, Ordering::SeqCst);
    let total: u64 = readers
        .into_iter()
        .map(|r| r.join().expect("reader thread"))
        .sum();
    assert!(total > 0, "readers made no progress");

    handle.shutdown();
    join.join().expect("server thread");
}
