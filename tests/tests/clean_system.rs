//! Fault-injection controls: with the noise switched off, technique L3
//! reaches (near-)perfect precision, and each §4.8 noise category
//! reappears when its knob alone is turned back on.

use logdep::l3::{run_l3, L3Config};
use logdep::model::{diff_app_service, AppServiceModel};
use logdep_logstore::time::TimeRange;
use logdep_logstore::Millis;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, NoiseConfig, SimConfig};

fn run_week(noise: NoiseConfig) -> (logdep_sim::SimOutput, AppServiceModel, Vec<String>) {
    let mut cfg = SimConfig::paper_week(17, 0.15);
    cfg.days = 3;
    cfg.noise = noise;
    let out = simulate(&cfg);
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let svc_ref = AppServiceModel::from_names(
        &out.store.registry,
        &ids,
        out.truth
            .app_service
            .iter()
            .map(|(a, s)| (a.as_str(), s.as_str())),
    )
    .expect("ids resolve");
    (out, svc_ref, ids)
}

fn l3_diff(
    out: &logdep_sim::SimOutput,
    svc_ref: &AppServiceModel,
    ids: &[String],
) -> logdep::Diff<(logdep_logstore::SourceId, usize)> {
    let range = TimeRange::new(Millis(0), Millis::from_days(4));
    let res = run_l3(
        &out.store,
        range,
        ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3");
    diff_app_service(&res.detected, svc_ref)
}

#[test]
fn clean_system_yields_no_false_positives() {
    let (out, svc_ref, ids) = run_week(NoiseConfig::clean());
    let d = l3_diff(&out, &svc_ref, &ids);
    assert_eq!(
        d.fp(),
        0,
        "clean run produced false positives: {:?}",
        d.false_pos
    );
    // Misses can only be dormant edges (clean() keeps the frequency
    // tiers) — and clean() marks none as dormant-specific noise, so
    // every false negative must be an unrealized edge.
    for (app, svc) in &d.false_neg {
        let app_name = out.store.registry.source_name(*app);
        let realized: u32 = out
            .topology
            .edges
            .iter()
            .enumerate()
            .filter(|(_, e)| out.topology.apps[e.caller].name == app_name && e.service == *svc)
            .map(|(i, _)| out.stats.realized.iter().map(|day| day[i]).sum::<u32>())
            .sum();
        assert_eq!(realized, 0, "realized dependency missed by clean L3");
    }
}

#[test]
fn coincidence_knob_reintroduces_its_false_positives() {
    let noise = NoiseConfig {
        coincidence_pairs: 6,
        coincidence_rate_per_day: 3.0,
        ..NoiseConfig::clean()
    };
    let (out, svc_ref, ids) = run_week(noise);
    let d = l3_diff(&out, &svc_ref, &ids);
    assert!(
        d.fp() >= 3,
        "coincidence noise produced too few false positives: {}",
        d.fp()
    );
}

#[test]
fn unlogged_knob_creates_false_negatives() {
    let noise = NoiseConfig {
        unlogged_apps: 3,
        unlogged_edges: 6,
        ..NoiseConfig::clean()
    };
    let (out, svc_ref, ids) = run_week(noise);
    let d = l3_diff(&out, &svc_ref, &ids);
    let unlogged_missed = d
        .false_neg
        .iter()
        .filter(|(app, svc)| {
            out.truth.uncited.contains(&(
                out.store.registry.source_name(*app).to_owned(),
                ids[*svc].clone(),
            ))
        })
        .count();
    assert!(
        unlogged_missed >= 5,
        "unlogged edges were somehow detected: {unlogged_missed} of 6 missed"
    );
}

#[test]
fn renamed_knob_is_invisible_to_whole_word_matching() {
    let noise = NoiseConfig {
        renamed_edges: 3,
        ..NoiseConfig::clean()
    };
    let (out, svc_ref, ids) = run_week(noise);
    let d = l3_diff(&out, &svc_ref, &ids);
    // The renamed service ids (X2) are never cited — the callers keep
    // citing X, which whole-word matching refuses to bind to X2.
    let renamed_missed = d
        .false_neg
        .iter()
        .filter(|(app, svc)| {
            out.truth.uncited.contains(&(
                out.store.registry.source_name(*app).to_owned(),
                ids[*svc].clone(),
            ))
        })
        .count();
    assert_eq!(renamed_missed, 3);
}

#[test]
fn leaky_server_knob_creates_inverted_dependencies() {
    let noise = NoiseConfig {
        leaky_server_templates: 3,
        server_citing_fraction: 0.8,
        ..NoiseConfig::clean()
    };
    let (out, svc_ref, ids) = run_week(noise);
    let d = l3_diff(&out, &svc_ref, &ids);
    let owners: Vec<String> = out
        .topology
        .services
        .iter()
        .map(|s| out.topology.apps[s.owner].name.clone())
        .collect();
    let inverted = d
        .false_pos
        .iter()
        .filter(|(app, svc)| out.store.registry.source_name(*app) == owners[*svc])
        .count();
    assert!(inverted >= 1, "no inverted dependency from leaky templates");
}
