//! Integration tests of the §5 extension implementations on simulated
//! data: direction detection, delay analysis, adaptive slots, the
//! load-proportional reference, the dependency graph, and landscape
//! evolution.

use logdep::evolution::app_service_churn;
use logdep::graph::DependencyGraph;
use logdep::l1::{adaptive_slots, run_l1_slots, AdaptiveConfig, L1Config};
use logdep::l2::{delay_profiles, detect_directions, run_l2, DelayConfig, DirectionConfig};
use logdep::l3::{run_l3, L3Config};
use logdep::model::diff_pairs;
use logdep::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{Millis, SourceId};
use logdep_sessions::reconstruct_range;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::topology::Topology;
use logdep_sim::{simulate, simulate_with, NoiseConfig, SimConfig, TopologyConfig};
use std::collections::BTreeMap;

fn one_day() -> logdep_sim::SimOutput {
    let mut cfg = SimConfig::paper_week(77, 0.3);
    cfg.days = 1;
    simulate(&cfg)
}

#[test]
fn direction_detection_mostly_agrees_with_ground_truth() {
    let out = one_day();
    let day = TimeRange::day(0);
    let l2cfg = logdep::l2::L2Config::default();
    let l2 = run_l2(&out.store, day, &l2cfg).expect("L2");
    let sessions = reconstruct_range(&out.store, day, &l2cfg.session);

    let mut true_caller: BTreeMap<(SourceId, SourceId), SourceId> = BTreeMap::new();
    for e in &out.topology.edges {
        let caller = out
            .store
            .registry
            .find_source(&out.topology.apps[e.caller].name)
            .expect("registered");
        let owner = out
            .store
            .registry
            .find_source(&out.topology.apps[out.topology.services[e.service].owner].name)
            .expect("registered");
        if caller != owner {
            true_caller.insert((caller.min(owner), caller.max(owner)), caller);
        }
    }

    let pairs: Vec<_> = l2.detected.iter().collect();
    let directions = detect_directions(&sessions.sessions, &pairs, &DirectionConfig::default());
    let mut decided = 0;
    let mut correct = 0;
    for d in &directions {
        if let (Some(c), Some(&truth)) = (d.caller, true_caller.get(&(d.a, d.b))) {
            decided += 1;
            if c == truth {
                correct += 1;
            }
        }
    }
    assert!(decided >= 10, "too few decided directions: {decided}");
    assert!(
        correct * 10 >= decided * 8,
        "direction accuracy too low: {correct}/{decided}"
    );
}

#[test]
fn delay_analysis_separates_causal_from_concurrent() {
    let out = one_day();
    let day = TimeRange::day(0);
    let l2cfg = logdep::l2::L2Config::default();
    let l2 = run_l2(&out.store, day, &l2cfg).expect("L2");
    let sessions = reconstruct_range(&out.store, day, &l2cfg.session);
    let pair_ref = PairModel::from_names(
        &out.store.registry,
        out.truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let diff = diff_pairs(&l2.detected, &pair_ref);

    let mut types = Vec::new();
    for &(a, b) in diff.true_pos.iter().chain(diff.false_pos.iter()) {
        types.push((a, b));
        types.push((b, a));
    }
    let profiles = delay_profiles(&sessions.sessions, &types, &DelayConfig::default());
    let causal = |pair: &(SourceId, SourceId)| {
        profiles
            .iter()
            .filter(|p| {
                (p.first == pair.0 && p.second == pair.1)
                    || (p.first == pair.1 && p.second == pair.0)
            })
            .any(|p| p.causal)
    };
    let tp_rate =
        diff.true_pos.iter().filter(|p| causal(p)).count() as f64 / diff.tp().max(1) as f64;
    let fp_rate =
        diff.false_pos.iter().filter(|p| causal(p)).count() as f64 / diff.fp().max(1) as f64;
    assert!(
        tp_rate > fp_rate + 0.15,
        "delay analysis does not separate: tp {tp_rate:.2} vs fp {fp_rate:.2}"
    );
}

#[test]
fn adaptive_slots_cover_the_range_and_find_pairs() {
    let out = one_day();
    let day = TimeRange::day(0);
    let cfg = AdaptiveConfig {
        min_slot_ms: 60 * 60 * 1_000,
        ..AdaptiveConfig::default()
    };
    let slots = adaptive_slots(&out.store, day, &cfg).expect("slots");
    assert!(!slots.is_empty());
    assert_eq!(slots[0].start, day.start);
    assert_eq!(slots.last().unwrap().end, day.end);
    for w in slots.windows(2) {
        assert_eq!(w[0].end, w[1].start);
    }
    // And they drive L1 to a non-trivial result.
    let pair_ref = PairModel::from_names(
        &out.store.registry,
        out.truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let l1cfg = L1Config {
        minlogs: 12,
        seed: 4,
        ..L1Config::default()
    };
    let sources = out.store.active_sources();
    let res = run_l1_slots(&out.store, &slots, &sources, &l1cfg).expect("L1");
    let d = diff_pairs(&res.detected, &pair_ref);
    assert!(d.tp() >= 5, "adaptive L1 found only {} pairs", d.tp());
}

#[test]
fn graph_applications_on_mined_model() {
    let out = one_day();
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let res = run_l3(
        &out.store,
        TimeRange::day(0),
        &ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3");
    let owners: Vec<_> = out
        .topology
        .services
        .iter()
        .map(|s| {
            out.store
                .registry
                .find_source(&out.topology.apps[s.owner].name)
                .expect("registered")
        })
        .collect();
    let graph = DependencyGraph::from_app_service(&res.detected, &owners);
    assert!(graph.n_edges() > 50);

    let ranking = graph.criticality();
    assert!(ranking[0].1 > ranking.last().unwrap().1);
    // The most critical node's impact set is consistent with reverse
    // reachability: each impacted app requires the critical one.
    let (critical, _) = ranking[0];
    for app in graph.impact_set(critical) {
        assert!(
            graph.requirement_set(app).contains(&critical),
            "impact/requirement asymmetry"
        );
    }
}

#[test]
fn landscape_evolution_is_detected_by_remining() {
    let mut cfg = SimConfig::paper_week(55, 0.2);
    cfg.days = 2;
    let topo1 = Topology::generate(
        &TopologyConfig::hug_like(),
        &NoiseConfig::paper_taxonomy(),
        cfg.seed,
    );
    let week1 = simulate_with(&cfg, topo1.clone());
    let topo2 = topo1.evolve(8, 5, 42);
    let week2 = simulate_with(&cfg, topo2.clone());

    let ids: Vec<String> = week1
        .directory
        .ids()
        .iter()
        .map(|s| s.to_string())
        .collect();
    let l3cfg = L3Config::with_stop_patterns(standard_stop_patterns());
    let range = TimeRange::new(Millis(0), Millis::from_days(3));
    let m1 = run_l3(&week1.store, range, &ids, &l3cfg)
        .expect("L3")
        .detected;
    let m2 = run_l3(&week2.store, range, &ids, &l3cfg)
        .expect("L3")
        .detected;

    let churn = app_service_churn(&m1, &m2);
    assert!(
        churn.stability() > 0.75,
        "stability {:.2}",
        churn.stability()
    );
    assert!(
        churn.appeared.len() >= 5,
        "added edges not surfaced: {}",
        churn.appeared.len()
    );
    assert!(
        churn.disappeared.len() >= 3,
        "removed edges not surfaced: {}",
        churn.disappeared.len()
    );
}

#[test]
fn ensemble_agreement_is_a_precision_signal() {
    use logdep::ensemble::{app_service_to_pairs, Ensemble};
    use logdep::l1::{run_l1, L1Config};
    use logdep::l2::run_l2;

    let out = one_day();
    let day = TimeRange::day(0);
    let pair_ref = PairModel::from_names(
        &out.store.registry,
        out.truth
            .app_pairs
            .iter()
            .map(|(a, b)| (a.as_str(), b.as_str())),
    )
    .expect("names resolve");
    let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
    let owners: Vec<SourceId> = out
        .topology
        .services
        .iter()
        .map(|s| {
            out.store
                .registry
                .find_source(&out.topology.apps[s.owner].name)
                .expect("registered")
        })
        .collect();

    let sources = out.store.active_sources();
    let l1 = run_l1(
        &out.store,
        day,
        &sources,
        &L1Config {
            minlogs: 12,
            seed: 3,
            ..L1Config::default()
        },
    )
    .expect("L1");
    let l2 = run_l2(&out.store, day, &logdep::l2::L2Config::default()).expect("L2");
    let l3 = run_l3(
        &out.store,
        day,
        &ids,
        &L3Config::with_stop_patterns(standard_stop_patterns()),
    )
    .expect("L3");
    let l3_pairs = app_service_to_pairs(&l3.detected, &owners);

    let ensemble = Ensemble::combine(&l1.detected, &l2.detected, &l3_pairs);
    let precision = |m: &PairModel| diff_pairs(m, &pair_ref).true_positive_ratio();
    let p1 = precision(&ensemble.at_least(1));
    let p2 = precision(&ensemble.at_least(2));
    assert!(
        p2 >= p1,
        "agreement should not hurt precision: ≥2 votes {p2:.2} vs ≥1 vote {p1:.2}"
    );
    assert!(ensemble.at_least(2).len() >= 20, "enough agreed pairs");
    // Three-way agreement, when present, is essentially always real.
    let three = ensemble.at_least(3);
    if three.len() >= 10 {
        assert!(precision(&three) > 0.9, "unanimous pairs should be real");
    }
}
