//! Cross-crate property-based tests: invariants of the mining pipeline
//! that must hold for *any* log stream, not just simulated ones.

use logdep::l2::extract_bigrams;
use logdep::l3::{run_l3, L3Config};
use logdep::PairModel;
use logdep_logstore::time::TimeRange;
use logdep_logstore::{HostId, LogRecord, LogStore, Millis, SourceId, UserId};
use logdep_sessions::{reconstruct, Session, SessionConfig};
use proptest::prelude::*;

/// One generated log row: (timestamp, source, optional (user, host), text).
type LogRow = (i64, u8, Option<(u8, u8)>, String);

/// Strategy: an arbitrary small log stream with optional session keys.
fn log_rows() -> impl Strategy<Value = Vec<LogRow>> {
    prop::collection::vec(
        (
            0..86_400_000i64,
            0u8..8,
            prop::option::of((0u8..4, 0u8..4)),
            "[A-Za-z0-9 ()\\[\\]._-]{0,40}",
        ),
        0..120,
    )
}

fn build_store(rows: &[LogRow]) -> LogStore {
    let mut store = LogStore::new();
    // Pre-intern all source names so ids are stable.
    for i in 0..8u8 {
        store.registry.source(&format!("App{i}"));
    }
    for i in 0..4u8 {
        store.registry.user(&format!("u{i}"));
        store.registry.host(&format!("h{i}"));
    }
    for (t, src, ctx, text) in rows {
        let mut rec = LogRecord::minimal(SourceId(*src as u32), Millis(*t)).with_text(text.clone());
        if let Some((u, h)) = ctx {
            rec = rec
                .with_user(UserId(*u as u32))
                .with_host(HostId(*h as u32));
        }
        store.push(rec);
    }
    store.finalize();
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sessions_partition_keyed_logs(rows in log_rows(), gap in 1_000i64..10_000_000) {
        let store = build_store(&rows);
        let cfg = SessionConfig { max_gap_ms: gap, min_logs: 1 };
        let set = reconstruct(&store, &cfg);
        // With min_logs = 1 every keyed log is assigned exactly once.
        prop_assert_eq!(set.stats.assigned_logs, set.stats.keyed_logs);
        let total: usize = set.sessions.iter().map(Session::len).sum();
        prop_assert_eq!(total, set.stats.keyed_logs);
        // Sessions are internally ordered and respect the gap.
        for s in &set.sessions {
            for w in s.entries.windows(2) {
                prop_assert!(w[0].ts <= w[1].ts);
                prop_assert!(w[1].ts - w[0].ts <= gap);
            }
        }
    }

    #[test]
    fn smaller_timeout_never_increases_bigrams(rows in log_rows()) {
        let store = build_store(&rows);
        let cfg = SessionConfig { max_gap_ms: 60_000, min_logs: 2 };
        let set = reconstruct(&store, &cfg);
        let small = extract_bigrams(&set.sessions, Some(500));
        let large = extract_bigrams(&set.sessions, Some(5_000));
        let none = extract_bigrams(&set.sessions, None);
        prop_assert!(small.total <= large.total);
        prop_assert!(large.total <= none.total);
        // Every small-timeout bigram type also exists at larger timeouts.
        for (k, v) in &small.joint {
            prop_assert!(large.joint.get(k).copied().unwrap_or(0) >= *v);
        }
    }

    #[test]
    fn l3_detections_monotone_in_stop_patterns(rows in log_rows()) {
        let store = build_store(&rows);
        let ids = vec!["APP1".to_owned(), "SCAN".to_owned(), "DATA".to_owned()];
        let range = TimeRange::new(Millis(0), Millis(86_400_001));
        let without = run_l3(&store, range, &ids, &L3Config::default()).unwrap();
        let with = run_l3(
            &store,
            range,
            &ids,
            &L3Config::with_stop_patterns(["*a*", "*0*"]),
        )
        .unwrap();
        // Stop patterns only remove evidence: detections shrink.
        for (app, svc) in with.detected.iter() {
            prop_assert!(without.detected.contains(app, svc));
        }
        prop_assert!(with.scanned_logs + with.stopped_logs == without.scanned_logs);
    }

    #[test]
    fn pair_model_is_set_like(pairs in prop::collection::vec((0u32..20, 0u32..20), 0..60)) {
        let mut model = PairModel::new();
        for &(a, b) in &pairs {
            model.insert(SourceId(a), SourceId(b));
        }
        // Membership is order-insensitive and excludes self-pairs.
        for &(a, b) in &pairs {
            if a != b {
                prop_assert!(model.contains(SourceId(a), SourceId(b)));
                prop_assert!(model.contains(SourceId(b), SourceId(a)));
            } else {
                prop_assert!(!model.contains(SourceId(a), SourceId(b)));
            }
        }
        // Size never exceeds distinct normalized pairs.
        let mut distinct: Vec<(u32, u32)> = pairs
            .iter()
            .filter(|(a, b)| a != b)
            .map(|&(a, b)| (a.min(b), a.max(b)))
            .collect();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(model.len(), distinct.len());
    }

    #[test]
    fn store_range_queries_agree_with_filtering(rows in log_rows(), lo in 0i64..86_400_000) {
        let store = build_store(&rows);
        let hi = lo + 3_600_000;
        let range = TimeRange::new(Millis(lo), Millis(hi));
        let by_query = store.range(range).len();
        let by_filter = store
            .records()
            .iter()
            .filter(|r| r.client_ts.0 >= lo && r.client_ts.0 < hi)
            .count();
        prop_assert_eq!(by_query, by_filter);
        // Per-source timelines sum to the store size.
        let total: usize = store
            .active_sources()
            .iter()
            .map(|&s| store.timeline(s).len())
            .sum();
        prop_assert_eq!(total, store.len());
    }

    #[test]
    fn timeline_nearest_distance_is_a_true_minimum(
        points in prop::collection::vec(0i64..1_000_000, 1..80),
        probe in 0i64..1_000_000,
    ) {
        let tl: logdep_logstore::Timeline =
            points.iter().map(|&p| Millis(p)).collect();
        let d = tl.dist_to_nearest(Millis(probe)).unwrap();
        let brute = points.iter().map(|&p| (p - probe).abs()).min().unwrap();
        prop_assert_eq!(d, brute);
    }
}
