//! End-to-end integration: simulator → log store → all three mining
//! techniques → evaluation, checking the qualitative results the paper
//! reports.

use logdep::eval::{l2_daily, l3_daily};
use logdep::l1::{run_l1, L1Config};
use logdep::l2::{run_l2, L2Config};
use logdep::l3::{run_l3, L3Config};
use logdep::model::{diff_app_service, diff_pairs, AppServiceModel, PairModel};
use logdep_logstore::time::TimeRange;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig, SimOutput};

/// A shared quarter-scale week (built once; the tests read it).
fn week() -> &'static Fixture {
    use std::sync::OnceLock;
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let out = simulate(&SimConfig::paper_week(99, 0.25));
        let pair_ref = PairModel::from_names(
            &out.store.registry,
            out.truth
                .app_pairs
                .iter()
                .map(|(a, b)| (a.as_str(), b.as_str())),
        )
        .expect("names resolve");
        let ids: Vec<String> = out.directory.ids().iter().map(|s| s.to_string()).collect();
        let svc_ref = AppServiceModel::from_names(
            &out.store.registry,
            &ids,
            out.truth
                .app_service
                .iter()
                .map(|(a, s)| (a.as_str(), s.as_str())),
        )
        .expect("ids resolve");
        Fixture {
            out,
            pair_ref,
            svc_ref,
            ids,
        }
    })
}

struct Fixture {
    out: SimOutput,
    pair_ref: PairModel,
    svc_ref: AppServiceModel,
    ids: Vec<String>,
}

fn l3_cfg() -> L3Config {
    L3Config::with_stop_patterns(standard_stop_patterns())
}

#[test]
fn l3_is_precise_and_covers_most_of_the_model() {
    let f = week();
    let series = l3_daily(&f.out.store, 7, &f.ids, &l3_cfg(), &f.svc_ref).expect("L3");
    for d in &series.days {
        assert!(d.tpr > 0.85, "day {} precision {:.2} too low", d.day, d.tpr);
        // Weekends realize fewer dependencies (rare edges go quiet), so
        // the recall floor is lower there — the very effect Figure 8
        // reports.
        let floor = if d.day == 4 || d.day == 5 { 6 } else { 7 };
        assert!(
            d.tp * 10 >= f.svc_ref.len() * floor,
            "day {} recall too low: {}/{}",
            d.day,
            d.tp,
            f.svc_ref.len()
        );
    }
}

#[test]
fn l2_finds_a_third_of_pairs_at_decent_precision() {
    let f = week();
    let series = l2_daily(&f.out.store, 7, &L2Config::default(), &f.pair_ref).expect("L2");
    for d in &series.days {
        assert!(d.tpr > 0.5, "day {} precision {:.2}", d.day, d.tpr);
        assert!(d.tp >= 15, "day {} tp {} too low", d.day, d.tp);
    }
}

#[test]
fn l1_detects_strong_pairs_with_high_precision() {
    let f = week();
    let cfg = L1Config {
        minlogs: 10,
        seed: 5,
        ..L1Config::default()
    };
    let sources = f.out.store.active_sources();
    let res = run_l1(&f.out.store, TimeRange::day(0), &sources, &cfg).expect("L1");
    let d = diff_pairs(&res.detected, &f.pair_ref);
    assert!(d.tp() >= 8, "only {} true pairs found", d.tp());
    assert!(
        d.true_positive_ratio() > 0.6,
        "precision {:.2}",
        d.true_positive_ratio()
    );
}

#[test]
fn technique_precision_ordering_matches_paper() {
    // §6: performance is "proportional to the amount of semantic
    // content of log messages considered": L3 ≥ L2 in precision.
    let f = week();
    let l3 = l3_daily(&f.out.store, 7, &f.ids, &l3_cfg(), &f.svc_ref).expect("L3");
    let l2 = l2_daily(&f.out.store, 7, &L2Config::default(), &f.pair_ref).expect("L2");
    let mean = |s: &logdep::eval::DailySeries| {
        let v = s.tpr_values();
        v.iter().sum::<f64>() / v.len() as f64
    };
    assert!(
        mean(&l3) > mean(&l2),
        "L3 {:.2} should beat L2 {:.2}",
        mean(&l3),
        mean(&l2)
    );
}

#[test]
fn weekend_activity_shrinks_detections_for_l2_and_l3() {
    let f = week();
    let l3 = l3_daily(&f.out.store, 7, &f.ids, &l3_cfg(), &f.svc_ref).expect("L3");
    let weekday_avg: f64 = [0usize, 1, 2, 3, 6]
        .iter()
        .map(|&i| l3.days[i].tp as f64)
        .sum::<f64>()
        / 5.0;
    for &we in &[4usize, 5] {
        assert!(
            (l3.days[we].tp as f64) < weekday_avg,
            "weekend day {} should detect fewer: {} vs {weekday_avg}",
            we,
            l3.days[we].tp
        );
    }
}

#[test]
fn stop_patterns_remove_inverted_dependencies() {
    let f = week();
    let day = TimeRange::day(0);
    let with = run_l3(&f.out.store, day, &f.ids, &l3_cfg()).expect("L3");
    let without = run_l3(&f.out.store, day, &f.ids, &L3Config::default()).expect("L3");
    let owners: Vec<_> = f
        .out
        .topology
        .services
        .iter()
        .map(|s| {
            f.out
                .store
                .registry
                .find_source(&f.out.topology.apps[s.owner].name)
                .expect("registered")
        })
        .collect();
    let inverted = |detected: &AppServiceModel| {
        detected
            .iter()
            .filter(|&(app, svc)| owners[svc] == app)
            .count()
    };
    let v_with = inverted(&with.detected);
    let v_without = inverted(&without.detected);
    assert!(
        v_without >= v_with + 5,
        "stop patterns had no effect: {v_without} vs {v_with}"
    );
    assert!(with.stopped_logs > 0);
}

#[test]
fn full_week_union_beats_single_days_for_l3() {
    let f = week();
    let week_range = TimeRange::new(
        logdep_logstore::Millis(0),
        logdep_logstore::Millis::from_days(8),
    );
    let union = run_l3(&f.out.store, week_range, &f.ids, &l3_cfg()).expect("L3");
    let day0 = run_l3(&f.out.store, TimeRange::day(0), &f.ids, &l3_cfg()).expect("L3");
    let du = diff_app_service(&union.detected, &f.svc_ref);
    let d0 = diff_app_service(&day0.detected, &f.svc_ref);
    assert!(du.tp() >= d0.tp(), "union {} < day0 {}", du.tp(), d0.tp());
}

#[test]
fn l2_timeout_tradeoff_holds_on_simulated_data() {
    let f = week();
    let day = TimeRange::day(0);
    let strict = run_l2(&f.out.store, day, &L2Config::with_timeout(Some(400))).expect("L2");
    let lax = run_l2(&f.out.store, day, &L2Config::with_timeout(None)).expect("L2");
    let ds = diff_pairs(&strict.detected, &f.pair_ref);
    let dl = diff_pairs(&lax.detected, &f.pair_ref);
    assert!(
        ds.true_positive_ratio() > dl.true_positive_ratio(),
        "strict {:.2} should beat lax {:.2} in precision",
        ds.true_positive_ratio(),
        dl.true_positive_ratio()
    );
    assert!(
        ds.tp() <= dl.tp(),
        "strict {} should not find more than lax {}",
        ds.tp(),
        dl.tp()
    );
}

#[test]
fn simulation_is_deterministic_across_processes() {
    // Two fresh simulations with the fixture's seed must agree with the
    // fixture itself (guards against global-state leakage).
    let again = simulate(&SimConfig::paper_week(99, 0.25));
    let f = week();
    assert_eq!(f.out.store.len(), again.store.len());
    assert_eq!(f.out.truth, again.truth);
    assert_eq!(f.out.store.records()[1000], again.store.records()[1000]);
}
