//! Golden-trace conformance suite for the observability layer.
//!
//! Three fixed-seed simulator scenarios — a batch pipeline run, an
//! incremental sliding window, and a resume-after-crash — each produce
//! a structured event trace that must be **byte-identical** across
//! worker-pool widths (serial vs 4 threads), across consecutive runs,
//! and against the committed golden snapshots in `tests/golden/`.
//!
//! To regenerate the snapshots after an intentional schema change:
//!
//! ```text
//! LOGDEP_BLESS=1 cargo test -p logdep-integration --test obs_golden
//! ```
//!
//! and commit the rewritten `tests/golden/obs_*.jsonl` files.

use logdep::durable::{run_daily_durable, DailyPlan, DurableError, NoopPolicy, WritePolicy};
use logdep::health::{run_pipeline, PipelineConfig};
use logdep::l1::L1Config;
use logdep::l3::L3Config;
use logdep::obs::{set_recorder, take_recorder, Recorder};
use logdep::window::run_window_cached;
use logdep::EvidenceCache;
use logdep_faults::crash::{corrupt_bytes, Corruption, CrashPoint};
use logdep_logstore::time::{TimeRange, MS_PER_HOUR};
use logdep_logstore::{LogStore, Millis};
use logdep_par::ParConfig;
use logdep_sim::textgen::standard_stop_patterns;
use logdep_sim::{simulate, SimConfig};
use std::path::PathBuf;

struct Landscape {
    store: LogStore,
    service_ids: Vec<String>,
}

fn landscape() -> Landscape {
    let mut cfg = SimConfig::small_test(11);
    cfg.days = 9;
    let out = simulate(&cfg);
    Landscape {
        service_ids: out.directory.ids().iter().map(|s| s.to_string()).collect(),
        store: out.store,
    }
}

/// All three techniques on, small L1 slots, explicit pool width — the
/// same cheap-but-real setup the crash sweep uses, with the width under
/// test control instead of `LOGDEP_THREADS`.
fn pipeline_config(par: ParConfig) -> PipelineConfig {
    let mut cfg = PipelineConfig::all_defaults_with_par(par);
    cfg.l1 = Some(L1Config {
        slot_ms: 6 * MS_PER_HOUR,
        minlogs: 30,
        sample_size: 40,
        seed: 7,
        ..L1Config::default()
    });
    cfg.l3 = Some(L3Config::with_stop_patterns(standard_stop_patterns()));
    cfg
}

fn day_range(d0: i64, d1: i64) -> TimeRange {
    TimeRange::new(Millis::from_days(d0), Millis::from_days(d1))
}

/// Runs `f` with a fresh deterministic recorder installed, returning
/// the drained recorder.
fn traced<F: FnOnce()>(f: F) -> Recorder {
    assert!(
        set_recorder(Recorder::new()).is_none(),
        "a recorder leaked in from a previous test"
    );
    f();
    take_recorder().expect("recorder still installed")
}

/// Compares `actual` against the committed snapshot, or rewrites the
/// snapshot under `LOGDEP_BLESS=1`.
fn golden_check(name: &str, actual: &str) {
    let path = format!("{}/golden/{name}.jsonl", env!("CARGO_MANIFEST_DIR"));
    if std::env::var_os("LOGDEP_BLESS").is_some() {
        std::fs::write(&path, actual).expect("bless golden snapshot");
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("read {path}: {e}; run with LOGDEP_BLESS=1 to create the snapshot")
    });
    assert_eq!(
        actual, expected,
        "{name}: trace drifted from the committed golden snapshot; if the change \
         is intended, regenerate with LOGDEP_BLESS=1 and commit the diff"
    );
}

/// Asserts the scenario produces the same trace serially, at width 4,
/// and across two consecutive runs — then checks it against the golden.
fn assert_conformant(name: &str, scenario: impl Fn(ParConfig) -> Recorder) {
    let serial = scenario(ParConfig::serial());
    let wide = scenario(ParConfig::with_threads(4).expect("pool width"));
    let again = scenario(ParConfig::serial());

    let trace = serial.sink.render_jsonl();
    assert_eq!(
        trace,
        wide.sink.render_jsonl(),
        "{name}: trace differs between serial and 4-thread runs"
    );
    assert_eq!(
        trace,
        again.sink.render_jsonl(),
        "{name}: trace differs between two consecutive serial runs"
    );
    // Timing histograms measure real elapsed time, so only the
    // counters and gauges are part of the determinism contract.
    let countable = |r: &Recorder| {
        (
            r.metrics
                .counters()
                .map(|(k, v)| (k.to_owned(), v))
                .collect::<Vec<_>>(),
            r.metrics
                .gauges()
                .map(|(k, v)| (k.to_owned(), v))
                .collect::<Vec<_>>(),
        )
    };
    assert_eq!(
        countable(&serial),
        countable(&wide),
        "{name}: counters or gauges differ between serial and 4-thread runs"
    );
    serial
        .sink
        .check_balanced()
        .unwrap_or_else(|e| panic!("{name}: unbalanced spans: {e}"));
    golden_check(name, &trace);
}

#[test]
fn batch_pipeline_trace_is_golden() {
    let land = landscape();
    assert_conformant("obs_batch", |par| {
        let cfg = pipeline_config(par);
        traced(|| {
            run_pipeline(&land.store, day_range(0, 2), &land.service_ids, None, &cfg);
        })
    });
}

#[test]
fn incremental_window_trace_is_golden() {
    let land = landscape();
    assert_conformant("obs_incremental", |par| {
        let cfg = pipeline_config(par);
        traced(|| {
            // Prime a 2-day window, then slide it twice with a rolling
            // cache; the trace records the warm hits of each advance.
            let mut cache = EvidenceCache::new();
            for (d0, d1) in [(0, 2), (1, 3), (2, 4)] {
                run_window_cached(
                    &land.store,
                    day_range(d0, d1),
                    &land.service_ids,
                    &cfg,
                    &mut cache,
                )
                .expect("windowed run");
            }
        })
    });
}

/// Aborts at the Kth durable write, leaving a deterministic wreck.
struct CrashPolicy {
    crash: CrashPoint,
    corruption: Option<Corruption>,
    seed: u64,
}

impl WritePolicy for CrashPolicy {
    fn before_write(
        &mut self,
        _op: logdep::durable::DurableOp,
        bytes: &[u8],
    ) -> logdep::durable::WriteDecision {
        if self.crash.strike() {
            logdep::durable::WriteDecision::Abort {
                partial: self
                    .corruption
                    .map(|kind| corrupt_bytes(bytes, kind, self.seed)),
            }
        } else {
            logdep::durable::WriteDecision::Proceed
        }
    }
}

fn fresh_store_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("logdep-obs-golden-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let path = dir.join(name);
    for suffix in [
        "",
        ".journal",
        ".ledger",
        ".quarantine",
        ".tmp",
        ".journal.tmp",
    ] {
        let mut victim = path.as_os_str().to_os_string();
        victim.push(suffix);
        match std::fs::remove_file(&victim) {
            Ok(()) | Err(_) => {}
        }
    }
    path
}

#[test]
fn resume_after_crash_trace_is_golden() {
    let land = landscape();
    let plan = DailyPlan {
        start_day: 0,
        window_days: 2,
        advance_days: 1,
        steps: 4,
    };
    assert_conformant("obs_resume", |par| {
        let cfg = pipeline_config(par);
        let path = fresh_store_path("resume.ck");

        // Crash the untraced first run mid-flight, with a torn write
        // left behind, so the traced resume sees real recovery events.
        let mut policy = CrashPolicy {
            crash: CrashPoint::at(5),
            corruption: Some(Corruption::TornPrefix),
            seed: 0x5eed,
        };
        match run_daily_durable(
            &land.store,
            &land.service_ids,
            &cfg,
            &plan,
            &path,
            false,
            &mut policy,
            &mut |_, _| {},
        ) {
            Err(DurableError::Crashed { .. }) => {}
            other => panic!("crash point never fired: {other:?}"),
        }

        traced(|| {
            let report = run_daily_durable(
                &land.store,
                &land.service_ids,
                &cfg,
                &plan,
                &path,
                true,
                &mut NoopPolicy,
                &mut |_, _| {},
            )
            .expect("resume after crash");
            assert!(report.resumed_from > 0, "resume skipped nothing");
        })
    });
}
